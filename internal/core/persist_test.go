package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func randomTransactions(rng *rand.Rand, n int) [][]blktrace.Extent {
	txs := make([][]blktrace.Extent, n)
	for i := range txs {
		size := 1 + rng.Intn(5)
		seen := map[blktrace.Extent]struct{}{}
		for len(txs[i]) < size {
			e := ext(uint64(rng.Intn(50)), uint32(1+rng.Intn(4)))
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			txs[i] = append(txs[i], e)
		}
	}
	return txs
}

func TestPersistRoundTrip(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 16, PairCapacity: 16})
	rng := rand.New(rand.NewSource(3))
	for _, tx := range randomTransactions(rng, 200) {
		a.Process(tx)
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("LoadAnalyzer: %v", err)
	}
	if !reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) {
		t.Error("snapshot mismatch after round trip")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats mismatch: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Config() != b.Config() {
		t.Errorf("config mismatch: %+v vs %+v", a.Config(), b.Config())
	}
	if err := b.Items().CheckInvariants(); err != nil {
		t.Errorf("restored item table: %v", err)
	}
	if err := b.Pairs().CheckInvariants(); err != nil {
		t.Errorf("restored pair table: %v", err)
	}
}

// The strong property: a restored analyzer behaves identically to the
// original on any subsequent stream — recency order, eviction choices,
// promotions, everything.
func TestPersistBehavioralEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAnalyzer(Config{
			ItemCapacity: 2 + rng.Intn(10),
			PairCapacity: 2 + rng.Intn(10),
		})
		if err != nil {
			return false
		}
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
		}
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := LoadAnalyzer(&buf)
		if err != nil {
			return false
		}
		// Drive both with the same further stream.
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
			b.Process(tx)
		}
		return reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) && a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPersistEmptyAnalyzer(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Items().Len() != 0 || b.Pairs().Len() != 0 {
		t.Error("restored empty analyzer not empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadAnalyzer(strings.NewReader("")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("empty input: %v", err)
	}
	if _, err := LoadAnalyzer(strings.NewReader("NOPE nonsense")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Valid snapshot with clobbered version.
	a := mustAnalyzer(t, Config{ItemCapacity: 4, PairCapacity: 4})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF
	if _, err := LoadAnalyzer(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshotVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := LoadAnalyzer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// snapshotBytes returns a valid snapshot of a small exercised analyzer
// plus the byte offsets of the header fields, so tests can corrupt
// specific fields in place.
func snapshotBytes(t *testing.T) (data []byte, off struct{ itemCap, pairCap, ratio, nItems int }) {
	t.Helper()
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// magic(4) | version u16 | itemCap u64 | pairCap u64 |
	// threshold u32 | ratioBits u64 | stats | nItems u32 | ...
	off.itemCap = 4 + 2
	off.pairCap = off.itemCap + 8
	off.ratio = off.pairCap + 8 + 4
	off.nItems = off.ratio + 8 + binary.Size(Stats{})
	return buf.Bytes(), off
}

// A corrupt or hostile header must be rejected with a located error
// before it can size an allocation — int(1<<40) must never reach a
// table build.
func TestLoadRejectsHostileHeader(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(data []byte, off struct{ itemCap, pairCap, ratio, nItems int })
	}{
		{"item capacity huge", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.itemCap:], 1<<40)
		}},
		{"item capacity zero", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.itemCap:], 0)
		}},
		{"pair capacity overflows int", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.pairCap:], 1<<63)
		}},
		{"tier ratio NaN", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(math.NaN()))
		}},
		{"tier ratio +Inf", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(math.Inf(1)))
		}},
		{"tier ratio negative", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(-0.5))
		}},
		{"item count exceeds capacity", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint32(d[o.nItems:], 1<<30)
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data, off := snapshotBytes(t)
			tc.corrupt(data, off)
			_, err := LoadAnalyzer(bytes.NewReader(data))
			if !errors.Is(err, ErrBadSnapshotHeader) {
				t.Fatalf("got %v, want ErrBadSnapshotHeader", err)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("error %q does not locate the bad field", err)
			}
		})
	}
}

// Decode failures must say where the stream went bad.
func TestLoadErrorsCarryOffsets(t *testing.T) {
	data, off := snapshotBytes(t)
	if _, err := LoadAnalyzer(bytes.NewReader(data[:off.nItems+2])); err == nil ||
		!strings.Contains(err.Error(), "offset") {
		t.Errorf("truncation error %v lacks an offset", err)
	}
	// Duplicate item record: copy the first record over the second.
	recSize := binary.Size(itemRecord{})
	first := data[off.nItems+4 : off.nItems+4+recSize]
	copy(data[off.nItems+4+recSize:], first)
	_, err := LoadAnalyzer(bytes.NewReader(data))
	if !errors.Is(err, ErrBadSnapshotRecord) {
		t.Fatalf("duplicate record: got %v, want ErrBadSnapshotRecord", err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("record error %q lacks an offset", err)
	}
}

func TestLoadRejectsNonCanonicalPair(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The pair record sits at the end; swap A and B blocks (bytes are
	// little-endian u64s at fixed offsets from the tail).
	// Rather than compute offsets, corrupt by brute force: flip the
	// final pair's A block to something larger than B.
	// pairRecord layout: tier u8, pad..., easier: just corrupt last 12
	// bytes (B extent) to zeros, making B < A.
	for i := len(data) - 12; i < len(data); i++ {
		data[i] = 0
	}
	if _, err := LoadAnalyzer(bytes.NewReader(data)); err == nil {
		t.Error("corrupted pair accepted")
	}
}
