package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// refModel is a deliberately naive reference implementation of the
// two-tier table semantics — plain maps and slices, MRU at index 0 —
// against which the arena-backed Table is differentially tested. It
// mirrors the documented behaviour of Touch/Demote/Remove, including
// the eviction callback sequence, with none of the arena machinery.
type refModel struct {
	cfg    TableConfig
	t1, t2 []uint64
	count  map[uint64]uint32
	tier   map[uint64]Tier
	evicts []refEvict
}

type refEvict struct {
	key   uint64
	count uint32
}

func newRefModel(cfg TableConfig) *refModel {
	return &refModel{
		cfg:   cfg,
		count: make(map[uint64]uint32),
		tier:  make(map[uint64]Tier),
	}
}

func refIndexOf(l []uint64, k uint64) int {
	for i, v := range l {
		if v == k {
			return i
		}
	}
	return -1
}

func refDelete(l []uint64, k uint64) []uint64 {
	i := refIndexOf(l, k)
	return append(l[:i], l[i+1:]...)
}

func (r *refModel) evictBack(l *[]uint64) {
	k := (*l)[len(*l)-1]
	*l = (*l)[:len(*l)-1]
	r.evicts = append(r.evicts, refEvict{key: k, count: r.count[k]})
	delete(r.count, k)
	delete(r.tier, k)
}

func (r *refModel) touch(k uint64) TouchResult {
	switch r.tier[k] {
	case Tier1:
		r.count[k]++
		if r.count[k] >= r.cfg.PromoteThreshold {
			r.t1 = refDelete(r.t1, k)
			if len(r.t2) >= r.cfg.Capacity2 {
				r.evictBack(&r.t2)
			}
			r.tier[k] = Tier2
			r.t2 = append([]uint64{k}, r.t2...)
			return Promoted
		}
		r.t1 = append([]uint64{k}, refDelete(r.t1, k)...)
		return HitT1
	case Tier2:
		r.count[k]++
		r.t2 = append([]uint64{k}, refDelete(r.t2, k)...)
		return HitT2
	}
	if len(r.t1) >= r.cfg.Capacity1 {
		r.evictBack(&r.t1)
	}
	r.t1 = append([]uint64{k}, r.t1...)
	r.count[k] = 1
	r.tier[k] = Tier1
	return Inserted
}

func (r *refModel) demote(k uint64) bool {
	switch r.tier[k] {
	case Tier1:
		r.t1 = append(refDelete(r.t1, k), k)
	case Tier2:
		r.t2 = append(refDelete(r.t2, k), k)
	default:
		return false
	}
	return true
}

func (r *refModel) remove(k uint64) bool {
	switch r.tier[k] {
	case Tier1:
		r.t1 = refDelete(r.t1, k)
	case Tier2:
		r.t2 = refDelete(r.t2, k)
	default:
		return false
	}
	delete(r.count, k)
	delete(r.tier, k)
	return true
}

// entries mirrors Table.Entries(0): T2 first, MRU→LRU per tier.
func (r *refModel) entries() []Entry[uint64] {
	out := make([]Entry[uint64], 0, len(r.t1)+len(r.t2))
	for _, k := range r.t2 {
		out = append(out, Entry[uint64]{Key: k, Count: r.count[k], Tier: Tier2})
	}
	for _, k := range r.t1 {
		out = append(out, Entry[uint64]{Key: k, Count: r.count[k], Tier: Tier1})
	}
	return out
}

// TestTableDifferential drives ~100k randomized mixed operations
// through the arena-backed table and the naive reference model in
// lockstep, asserting identical results per operation and identical
// eviction sequences — the arena/free-list machinery must be purely a
// memory-layout change.
func TestTableDifferential(t *testing.T) {
	const opsPerSeed = 25_000
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := TableConfig{
				Capacity1:        1 + rng.Intn(16),
				Capacity2:        1 + rng.Intn(16),
				PromoteThreshold: uint32(2 + rng.Intn(3)),
			}
			var evicts []refEvict
			tbl, err := NewTable[uint64](cfg, func(k uint64, c uint32) {
				evicts = append(evicts, refEvict{key: k, count: c})
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefModel(cfg)
			keyspace := uint64(8 + rng.Intn(56))
			for op := 0; op < opsPerSeed; op++ {
				k := rng.Uint64() % keyspace
				switch rng.Intn(10) {
				case 0: // demote
					if got, want := tbl.Demote(k), ref.demote(k); got != want {
						t.Fatalf("op %d: Demote(%d) = %v, ref %v", op, k, got, want)
					}
				case 1: // remove
					if got, want := tbl.Remove(k), ref.remove(k); got != want {
						t.Fatalf("op %d: Remove(%d) = %v, ref %v", op, k, got, want)
					}
				default: // touch (miss/hit/promote mix)
					if got, want := tbl.Touch(k), ref.touch(k); got != want {
						t.Fatalf("op %d: Touch(%d) = %v, ref %v", op, k, got, want)
					}
				}
				if len(evicts) != len(ref.evicts) {
					t.Fatalf("op %d: %d evictions, ref %d", op, len(evicts), len(ref.evicts))
				}
				if len(evicts) > 0 {
					i := len(evicts) - 1
					if evicts[i] != ref.evicts[i] {
						t.Fatalf("op %d: eviction %d = %+v, ref %+v", op, i, evicts[i], ref.evicts[i])
					}
				}
				// Every op routes its key through the open-addressing
				// index (touch looks up, miss-evict deletes, insert
				// re-probes); presence must agree with the reference
				// after each one. The full structural sweep — including
				// checkIndexInvariants' probe-path and hash checks —
				// runs periodically, it is O(slots · probe length).
				_, inRef := ref.tier[k]
				if got := tbl.lookup(k) != nilSlot; got != inRef {
					t.Fatalf("op %d: index presence of %d = %v, ref %v", op, k, got, inRef)
				}
				if op%4096 == 0 {
					if err := tbl.checkInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := tbl.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			got, want := tbl.Entries(0), ref.entries()
			if len(got) != len(want) {
				t.Fatalf("final entries: %d, ref %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("final entry %d = %+v, ref %+v", i, got[i], want[i])
				}
			}
			if uint64(len(evicts)) != tbl.Evictions() {
				t.Fatalf("eviction counter %d, callback saw %d", tbl.Evictions(), len(evicts))
			}
		})
	}
}

// TestOAMapDifferential drives ~100k randomized set/delete/get
// operations through the open-addressing side map and a builtin map in
// lockstep. It sweeps keyspace sizes so the map runs at every load
// factor — from half-empty through repeated grow/rehash cycles — while
// the periodic invariant sweep proves backward-shift deletion never
// leaves a gap on a live probe path.
func TestOAMapDifferential(t *testing.T) {
	const opsPerSeed = 25_000
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := newOAMap[uint64](rng.Intn(64))
			shadow := map[uint64]int32{}
			keyspace := uint64(16 + rng.Intn(240))
			for op := 0; op < opsPerSeed; op++ {
				k := rng.Uint64() % keyspace
				switch rng.Intn(10) {
				case 0, 1, 2: // delete
					_, want := shadow[k]
					if got := m.Delete(k); got != want {
						t.Fatalf("op %d: Delete(%d) = %v, shadow %v", op, k, got, want)
					}
					delete(shadow, k)
				case 3: // get
					got, ok := m.Get(k)
					want, wok := shadow[k]
					if ok != wok || (ok && got != want) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), shadow (%d,%v)", op, k, got, ok, want, wok)
					}
				default: // set
					v := int32(rng.Intn(1 << 20))
					m.Set(k, v)
					shadow[k] = v
				}
				if m.Len() != len(shadow) {
					t.Fatalf("op %d: Len %d, shadow %d", op, m.Len(), len(shadow))
				}
				if op%1024 == 0 {
					if err := m.checkInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			// Range must visit exactly the shadow's entries.
			got := map[uint64]int32{}
			m.Range(func(k uint64, v int32) bool {
				if _, dup := got[k]; dup {
					t.Fatalf("Range visited %d twice", k)
				}
				got[k] = v
				return true
			})
			if !reflect.DeepEqual(got, shadow) {
				t.Fatalf("Range saw %d entries, shadow has %d", len(got), len(shadow))
			}
		})
	}
}
