package core

import (
	"fmt"
	"math/rand"
	"testing"

	"daccor/internal/blktrace"
)

// Fan-in read-path benchmarks: the numbers behind the incremental
// merged-view work. The scenario is the steady state every fleet
// deployment converges to — N mirrored devices, one of which changed
// since the last read — measured both ways: reconcile-one-source
// through the MergeIndex versus re-merging every mirror from scratch
// (core.MergeSnapshots). The incremental side's allocs/op must not
// scale with the fleet's entry count (the alloc-regress gate pins it).

// benchSourceSnapshot builds a deterministic per-device export over a
// keyspace shared across devices (so the union overlaps, the
// expensive case for the from-scratch merge).
func benchSourceSnapshot(rng *rand.Rand, entries int) Snapshot {
	items := make(map[blktrace.Extent]ItemCount, entries)
	pairs := make(map[blktrace.Pair]PairCount, entries)
	for len(items) < entries {
		e := blktrace.Extent{Block: uint64(rng.Intn(4*entries)) * 8, Len: 8}
		items[e] = ItemCount{Extent: e, Count: 1 + uint32(rng.Intn(10_000)), Tier: Tier1}
	}
	for len(pairs) < entries {
		a := blktrace.Extent{Block: uint64(rng.Intn(4*entries)) * 8, Len: 8}
		b := blktrace.Extent{Block: uint64(rng.Intn(4*entries)) * 8, Len: 8}
		if a == b {
			continue
		}
		p := blktrace.MakePair(a, b)
		pairs[p] = PairCount{Pair: p, Count: 1 + uint32(rng.Intn(10_000)), Tier: Tier1}
	}
	var s Snapshot
	for _, ic := range items {
		s.Items = append(s.Items, ic)
	}
	for _, pc := range pairs {
		s.Pairs = append(s.Pairs, pc)
	}
	s.sort()
	return s
}

func BenchmarkMergedReadUnderIngest(b *testing.B) {
	const entriesPerDevice = 128
	for _, devices := range []int{8, 64, 256} {
		rng := rand.New(rand.NewSource(42))
		snaps := make([]Snapshot, devices)
		names := make([]string, devices)
		for i := range snaps {
			snaps[i] = benchSourceSnapshot(rng, entriesPerDevice)
			names[i] = fmt.Sprintf("dev%03d", i)
		}
		// The dirty device alternates between two states, so every
		// iteration really changes entries and no side caches the
		// answer away.
		dirtyA, dirtyB := snaps[0], benchSourceSnapshot(rng, entriesPerDevice)

		b.Run(fmt.Sprintf("devices-%d/incremental", devices), func(b *testing.B) {
			idx := NewMergeIndex()
			for i, s := range snaps {
				idx.Update(names[i], s)
			}
			idx.Snapshot()
			for i := 0; i < 4; i++ { // warm both alternating states
				idx.Update(names[0], dirtyB)
				idx.Snapshot()
				idx.Update(names[0], dirtyA)
				idx.Snapshot()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					idx.Update(names[0], dirtyB)
				} else {
					idx.Update(names[0], dirtyA)
				}
				idx.Snapshot()
			}
		})

		b.Run(fmt.Sprintf("devices-%d/fromscratch", devices), func(b *testing.B) {
			cur := make([]Snapshot, devices)
			copy(cur, snaps)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					cur[0] = dirtyB
				} else {
					cur[0] = dirtyA
				}
				MergeSnapshots(cur...)
			}
		})
	}
}

func BenchmarkRulesTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	idx := NewMergeIndex()
	for i := 0; i < 32; i++ {
		idx.Update(fmt.Sprintf("dev%02d", i), benchSourceSnapshot(rng, 256))
	}
	merged := idx.Snapshot()
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged.Rules(2, 0.01)
		}
	})
	b.Run("top-10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged.TopRules(2, 0.01, 10)
		}
	})
	b.Run("index-top-10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.TopRules(2, 0.01, 10)
		}
	})
}
