package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"daccor/internal/blktrace"
)

func TestPartitionOfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, parts := range []int{1, 2, 3, 4, 7, 8, 64} {
		counts := make([]int, parts)
		for i := 0; i < 4096; i++ {
			e := blktrace.Extent{Block: rng.Uint64(), Len: uint32(1 + rng.Intn(256))}
			p := PartitionOf(e, parts)
			if p < 0 || p >= parts {
				t.Fatalf("PartitionOf(%v, %d) = %d out of range", e, parts, p)
			}
			if q := PartitionOf(e, parts); q != p {
				t.Fatalf("PartitionOf(%v, %d) not deterministic: %d then %d", e, parts, p, q)
			}
			counts[p]++
		}
		if parts > 1 {
			for p, n := range counts {
				if n == 0 {
					t.Errorf("parts=%d: partition %d received no extents out of 4096", parts, p)
				}
			}
		}
	}
	if got := PartitionOf(blktrace.Extent{Block: 42, Len: 8}, 1); got != 0 {
		t.Fatalf("parts=1 must map everything to 0, got %d", got)
	}
}

// The hash must be stable across processes (checkpoints re-split by
// it), so its values are pinned: changing the mix function is a format
// break and must be deliberate.
func TestPartitionOfPinned(t *testing.T) {
	cases := []struct {
		e     blktrace.Extent
		parts int
		want  int
	}{
		{blktrace.Extent{Block: 0, Len: 1}, 4, 1},
		{blktrace.Extent{Block: 8, Len: 8}, 4, 0},
		{blktrace.Extent{Block: 1099511627776, Len: 128}, 4, 2},
		{blktrace.Extent{Block: 123456789, Len: 16}, 8, 5},
		{blktrace.Extent{Block: 42, Len: 8}, 3, 0},
	}
	for _, c := range cases {
		if got := PartitionOf(c.e, c.parts); got != c.want {
			t.Errorf("PartitionOf(%v, %d) = %d, want %d (hash changed? that breaks checkpoint re-splitting)",
				c.e, c.parts, got, c.want)
		}
	}
}

func TestConfigSplit(t *testing.T) {
	base := Config{ItemCapacity: 1000, PairCapacity: 501, PromoteThreshold: 3, TierRatio: 0.25}
	got, err := base.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{ItemCapacity: 250, PairCapacity: 125, PromoteThreshold: 3, TierRatio: 0.25}
	if got != want {
		t.Fatalf("Split(4) = %+v, want %+v", got, want)
	}
	if same, err := base.Split(1); err != nil || same != base {
		t.Fatalf("Split(1) = %+v, %v; want identity", same, err)
	}
	if _, err := base.Split(0); err == nil {
		t.Fatal("Split(0) must fail")
	}
	if _, err := (Config{ItemCapacity: 2, PairCapacity: 2}).Split(4); err == nil {
		t.Fatal("splitting capacity 2 four ways must fail")
	}
}

// genTransactions builds deterministic random transactions of distinct
// extents, with enough key reuse across transactions to exercise
// promotions and pair-counter growth.
func genTransactions(seed int64, n, maxLen int) [][]blktrace.Extent {
	rng := rand.New(rand.NewSource(seed))
	txs := make([][]blktrace.Extent, 0, n)
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(maxLen-1)
		seen := make(map[blktrace.Extent]bool, k)
		tx := make([]blktrace.Extent, 0, k)
		for len(tx) < k {
			e := blktrace.Extent{Block: uint64(rng.Intn(200)) * 8, Len: uint32(8 << rng.Intn(2))}
			if !seen[e] {
				seen[e] = true
				tx = append(tx, e)
			}
		}
		txs = append(txs, tx)
	}
	return txs
}

// processPartitioned feeds one transaction to every partition the way
// the engine's router does: extents sorted ascending, full list to each
// partition.
func processPartitioned(parts []*Analyzer, tx []blktrace.Extent) {
	sorted := slices.Clone(tx)
	slices.SortFunc(sorted, blktrace.Extent.Compare)
	for k, a := range parts {
		a.ProcessPartitionSorted(sorted, k, len(parts))
	}
}

func newPartitionSet(t *testing.T, cfg Config, parts int) []*Analyzer {
	t.Helper()
	pcfg, err := cfg.Split(parts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Analyzer, parts)
	for k := range out {
		if out[k], err = NewAnalyzer(pcfg); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func captureGroup(parts []*Analyzer) RawGroup {
	g := make(RawGroup, len(parts))
	for k, a := range parts {
		g[k] = new(RawSnapshot)
		a.CaptureSnapshot(g[k])
	}
	return g
}

// In the no-eviction regime a P-partitioned device must be exactly the
// P=1 analyzer: same entries, same counters, same tiers, same rules.
func TestPartitionedDifferential(t *testing.T) {
	cfg := Config{ItemCapacity: 4096, PairCapacity: 16384}
	txs := genTransactions(42, 600, 8)
	ref, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		ref.Process(tx)
	}
	refSnap := ref.Snapshot(0)
	refRules := ref.Rules(2, 0.01)

	for _, p := range []int{1, 2, 4, 7} {
		parts := newPartitionSet(t, cfg, p)
		for _, tx := range txs {
			processPartitioned(parts, tx)
		}
		g := captureGroup(parts)
		if got := g.Snapshot(0); !reflect.DeepEqual(got, refSnap) {
			t.Fatalf("P=%d merged snapshot differs from P=1 (items %d vs %d, pairs %d vs %d)",
				p, len(got.Items), len(refSnap.Items), len(got.Pairs), len(refSnap.Pairs))
		}
		if got := g.Rules(2, 0.01); !reflect.DeepEqual(got, refRules) {
			t.Fatalf("P=%d merged rules differ from P=1 (%d vs %d rules)", p, len(got), len(refRules))
		}
		st := g.Stats()
		refSt := ref.Stats()
		if st.Extents != refSt.Extents || st.PairTouches != refSt.PairTouches {
			t.Fatalf("P=%d touch totals differ: extents %d vs %d, pairs %d vs %d",
				p, st.Extents, refSt.Extents, st.PairTouches, refSt.PairTouches)
		}
		if st.ItemPromotions != refSt.ItemPromotions || st.PairPromotions != refSt.PairPromotions {
			t.Fatalf("P=%d promotions differ: items %d vs %d, pairs %d vs %d",
				p, st.ItemPromotions, refSt.ItemPromotions, st.PairPromotions, refSt.PairPromotions)
		}
		if st.Transactions != 0 && p > 1 {
			t.Fatalf("partitions must not count transactions, got %d", st.Transactions)
		}
		for k, a := range parts {
			if err := a.CheckMembershipInvariants(); err != nil {
				t.Fatalf("P=%d partition %d membership invariants: %v", p, k, err)
			}
			if err := a.Items().CheckInvariants(); err != nil {
				t.Fatalf("P=%d partition %d item table: %v", p, k, err)
			}
			if err := a.Pairs().CheckInvariants(); err != nil {
				t.Fatalf("P=%d partition %d pair table: %v", p, k, err)
			}
		}
	}
}

// Every partition owns a disjoint slice: no extent or pair may be
// counted by two partitions.
func TestPartitionOwnershipDisjoint(t *testing.T) {
	cfg := Config{ItemCapacity: 4096, PairCapacity: 16384}
	parts := newPartitionSet(t, cfg, 4)
	for _, tx := range genTransactions(9, 200, 6) {
		processPartitioned(parts, tx)
	}
	seenItems := make(map[blktrace.Extent]int)
	seenPairs := make(map[blktrace.Pair]int)
	for k, a := range parts {
		for _, e := range a.Items().Entries(0) {
			if prev, dup := seenItems[e.Key]; dup {
				t.Fatalf("extent %v owned by partitions %d and %d", e.Key, prev, k)
			}
			seenItems[e.Key] = k
			if own := PartitionOf(e.Key, 4); own != k {
				t.Fatalf("extent %v in partition %d, PartitionOf says %d", e.Key, k, own)
			}
		}
		for _, e := range a.Pairs().Entries(0) {
			if prev, dup := seenPairs[e.Key]; dup {
				t.Fatalf("pair %v owned by partitions %d and %d", e.Key, prev, k)
			}
			seenPairs[e.Key] = k
			if own := PartitionOf(e.Key.A, 4); own != k {
				t.Fatalf("pair %v in partition %d, min-extent partition is %d", e.Key, k, own)
			}
		}
	}
}

// SplitAnalyzer must preserve the synopsis exactly (no evictions), and
// the split analyzers must continue the stream equivalently to the
// unsplit original.
func TestSplitAnalyzerRoundTrip(t *testing.T) {
	cfg := Config{ItemCapacity: 4096, PairCapacity: 16384}
	warm := genTransactions(5, 300, 7)
	cold := genTransactions(6, 300, 7)

	ref, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range warm {
		ref.Process(tx)
		src.Process(tx)
	}
	parts, shed, err := SplitAnalyzer(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if shed != 0 {
		t.Fatalf("no-eviction split shed %d entries", shed)
	}
	if got, want := captureGroup(parts).Snapshot(0), ref.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatal("split group snapshot differs from source immediately after split")
	}
	if got, want := captureGroup(parts).Stats(), ref.Stats(); got != want {
		t.Fatalf("split stats %+v, want %+v", got, want)
	}
	for _, tx := range cold {
		ref.Process(tx)
		processPartitioned(parts, tx)
	}
	if got, want := captureGroup(parts).Snapshot(0), ref.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatal("split group diverged from unsplit analyzer on subsequent stream")
	}
	for k, a := range parts {
		if err := a.CheckMembershipInvariants(); err != nil {
			t.Fatalf("partition %d membership invariants after split+stream: %v", k, err)
		}
	}

	same, shed, err := SplitAnalyzer(src, 1)
	if err != nil || shed != 0 || len(same) != 1 || same[0] != src {
		t.Fatalf("SplitAnalyzer(_, 1) = (%v, %d, %v); want identity", same, shed, err)
	}
}

// A partitioned device's combined checkpoint is one standard snapshot:
// loadable by LoadAnalyzer under the device config, and re-splittable
// onto any partition count.
func TestEncodeMergedLoadRoundTrip(t *testing.T) {
	cfg := Config{ItemCapacity: 4096, PairCapacity: 16384}
	parts := newPartitionSet(t, cfg, 4)
	txs := genTransactions(11, 400, 7)
	for _, tx := range txs {
		processPartitioned(parts, tx)
	}
	g := captureGroup(parts)
	stats := g.Stats()
	stats.Transactions = uint64(len(txs)) // the router's count

	var buf bytes.Buffer
	n, shed, err := g.EncodeMerged(&buf, cfg, stats)
	if err != nil {
		t.Fatal(err)
	}
	if shed != 0 {
		t.Fatalf("equal-tier encode shed %d entries", shed)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodeMerged reported %d bytes, wrote %d", n, buf.Len())
	}
	restored, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Config() != cfg {
		t.Fatalf("restored config %+v, want %+v", restored.Config(), cfg)
	}
	if restored.Stats() != stats {
		t.Fatalf("restored stats %+v, want %+v", restored.Stats(), stats)
	}
	if got, want := restored.Snapshot(0), g.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatal("restored snapshot differs from merged group snapshot")
	}
	if err := restored.CheckMembershipInvariants(); err != nil {
		t.Fatalf("restored membership invariants: %v", err)
	}

	// Re-split the restored device at a different partition count.
	reparts, shed, err := SplitAnalyzer(restored, 2)
	if err != nil {
		t.Fatal(err)
	}
	if shed != 0 {
		t.Fatalf("re-split shed %d entries", shed)
	}
	if got, want := captureGroup(reparts).Snapshot(0), g.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatal("re-split group snapshot differs from original group")
	}
}
