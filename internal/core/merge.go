package core

import (
	"math"

	"daccor/internal/blktrace"
)

// satAdd sums two counters, clamping at the uint32 ceiling. Per-device
// counters can each be near the ceiling after a long run, so a
// fleet-wide sum must saturate rather than wrap: a wrapped counter
// would demote the fleet's hottest correlation to the bottom of the
// merged ranking.
func satAdd(a, b uint32) uint32 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxUint32
}

// MergeSnapshots combines per-device synopsis exports into one
// fleet-wide view: the union of the pair and item sets with counters
// summed (saturating at the uint32 ceiling) and the tier taken as the
// highest tier any device holds the entry in. This is the aggregation layer of the multi-device engine —
// each device maintains its own bounded synopsis at hardware speed, and
// cross-device questions ("what correlates fleet-wide?") are answered
// by merging the per-device exports, the per-stream-synopsis-then-
// combine shape of the correlated heavy hitters literature.
//
// The result is ordered like any Snapshot (descending counter, ties by
// key), so merging the same snapshots in any order yields an identical
// value. Merging a single snapshot returns an equal snapshot, which is
// what makes the single-device deployment the N=1 case of the engine.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	// Size the dedup maps (and the output slices) by the summed input
	// lengths: an upper bound on the union, so the merge path never
	// rehashes or re-appends mid-merge. Overlapping fleets over-reserve
	// by the overlap, which is bounded and transient.
	var nPairs, nItems int
	for _, s := range snaps {
		nPairs += len(s.Pairs)
		nItems += len(s.Items)
	}
	pairAt := make(map[blktrace.Pair]int, nPairs)
	itemAt := make(map[blktrace.Extent]int, nItems)
	if nPairs > 0 {
		out.Pairs = make([]PairCount, 0, nPairs)
	}
	if nItems > 0 {
		out.Items = make([]ItemCount, 0, nItems)
	}
	for _, s := range snaps {
		for _, pc := range s.Pairs {
			if i, ok := pairAt[pc.Pair]; ok {
				out.Pairs[i].Count = satAdd(out.Pairs[i].Count, pc.Count)
				if pc.Tier > out.Pairs[i].Tier {
					out.Pairs[i].Tier = pc.Tier
				}
				continue
			}
			pairAt[pc.Pair] = len(out.Pairs)
			out.Pairs = append(out.Pairs, pc)
		}
		for _, ic := range s.Items {
			if i, ok := itemAt[ic.Extent]; ok {
				out.Items[i].Count = satAdd(out.Items[i].Count, ic.Count)
				if ic.Tier > out.Items[i].Tier {
					out.Items[i].Tier = ic.Tier
				}
				continue
			}
			itemAt[ic.Extent] = len(out.Items)
			out.Items = append(out.Items, ic)
		}
	}
	out.sort()
	return out
}

// Rules extracts directional association rules from an exported
// snapshot, exactly as Analyzer.Rules does from the live tables: every
// pair with counter >= minSupport yields up to two rules, kept when the
// antecedent extent is present in the snapshot's item table and the
// confidence freq(From∧To)/freq(From) meets minConfidence.
//
// On a single analyzer's full export (Snapshot(0)) this reproduces
// Analyzer.Rules; on a merged snapshot it yields fleet-wide rules whose
// confidences are estimates over the summed counters. The snapshot must
// have been exported with a support low enough to retain the antecedent
// items (use 0 for exact agreement with the live tables).
func (s Snapshot) Rules(minSupport uint32, minConfidence float64) []Rule {
	return s.TopRules(minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0); the result is exactly Rules(...)[:limit].
func (s Snapshot) TopRules(minSupport uint32, minConfidence float64, limit int) []Rule {
	items := make(map[blktrace.Extent]uint32, len(s.Items))
	for _, ic := range s.Items {
		items[ic.Extent] = ic.Count
	}
	sink := newRuleSink(limit)
	for _, pc := range s.Pairs {
		if pc.Count < minSupport {
			continue
		}
		sink.addPair(pc.Pair, pc.Count, minConfidence, func(ext blktrace.Extent) uint32 {
			return items[ext]
		})
	}
	return sink.finish()
}
