package core

import (
	"sort"

	"daccor/internal/blktrace"
)

// Rule is a directional association between extents: when From is
// requested, To is likely to be requested in the same transaction
// window. Confidence is the classic association-rule estimate
// freq(From ∧ To) / freq(From), computed from the live synopsis tables
// — the directional form optimizers like prefetchers need (reading an
// inode predicts its data blocks far more strongly than the reverse).
type Rule struct {
	From, To   blktrace.Extent
	Support    uint32
	Confidence float64
}

// Rules extracts directional rules from the synopsis: every pair with
// counter >= minSupport yields up to two rules (one per direction),
// kept when the antecedent extent is still resident in the item table
// and the confidence meets minConfidence. Rules are sorted by
// descending confidence, then support, then key order.
//
// Confidences are estimates: both counters are maintained under LRU
// eviction, so an extent readmitted after eviction restarts its tally.
// Values are clamped to 1.
func (a *Analyzer) Rules(minSupport uint32, minConfidence float64) []Rule {
	var out []Rule
	for _, e := range a.pairs.Entries(minSupport) {
		p := e.Key
		for _, dir := range [2][2]blktrace.Extent{{p.A, p.B}, {p.B, p.A}} {
			from, to := dir[0], dir[1]
			if from == to {
				continue
			}
			fromCount, ok := a.items.Count(from)
			if !ok || fromCount == 0 {
				continue
			}
			conf := float64(e.Count) / float64(fromCount)
			if conf > 1 {
				conf = 1
			}
			if conf < minConfidence {
				continue
			}
			out = append(out, Rule{From: from, To: to, Support: e.Count, Confidence: conf})
		}
	}
	sortRules(out)
	return out
}

// sortRules orders rules by descending confidence, then support, then
// key order — the presentation order shared by Analyzer.Rules and
// Snapshot.Rules.
func sortRules(out []Rule) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].From != out[j].From {
			return out[i].From.Less(out[j].From)
		}
		return out[i].To.Less(out[j].To)
	})
}
