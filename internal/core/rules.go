package core

import (
	"container/heap"
	"slices"

	"daccor/internal/blktrace"
)

// Rule is a directional association between extents: when From is
// requested, To is likely to be requested in the same transaction
// window. Confidence is the classic association-rule estimate
// freq(From ∧ To) / freq(From), computed from the live synopsis tables
// — the directional form optimizers like prefetchers need (reading an
// inode predicts its data blocks far more strongly than the reverse).
type Rule struct {
	From, To   blktrace.Extent
	Support    uint32
	Confidence float64
}

// Rules extracts directional rules from the synopsis: every pair with
// counter >= minSupport yields up to two rules (one per direction),
// kept when the antecedent extent is still resident in the item table
// and the confidence meets minConfidence. Rules are sorted by
// descending confidence, then support, then key order.
//
// Confidences are estimates: both counters are maintained under LRU
// eviction, so an extent readmitted after eviction restarts its tally.
// Values are clamped to 1.
func (a *Analyzer) Rules(minSupport uint32, minConfidence float64) []Rule {
	return a.TopRules(minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0). The bound is applied during extraction via a
// size-limit min-heap, so asking for the top 100 of a synopsis that
// would yield 50k rules never builds or sorts the 50k: partial
// selection costs O(n log limit) instead of the full sortRules
// O(n log n). The result is exactly Rules(...)[:limit] — the rule
// order is total, so the truncation is deterministic.
func (a *Analyzer) TopRules(minSupport uint32, minConfidence float64, limit int) []Rule {
	sink := newRuleSink(limit)
	for _, e := range a.pairs.Entries(minSupport) {
		sink.addPair(e.Key, e.Count, minConfidence, func(ext blktrace.Extent) uint32 {
			c, ok := a.items.Count(ext)
			if !ok {
				return 0
			}
			return c
		})
	}
	return sink.finish()
}

// compareRules is the rule presentation order shared by every
// extraction path: descending confidence, then descending support,
// then key order. It is total (no two distinct rules compare equal),
// which is what makes top-K selection identical to
// full-sort-then-truncate.
func compareRules(a, b Rule) int {
	if a.Confidence != b.Confidence {
		if a.Confidence > b.Confidence {
			return -1
		}
		return 1
	}
	if a.Support != b.Support {
		if a.Support > b.Support {
			return -1
		}
		return 1
	}
	if a.From != b.From {
		if a.From.Less(b.From) {
			return -1
		}
		return 1
	}
	switch {
	case a.To.Less(b.To):
		return -1
	case b.To.Less(a.To):
		return 1
	}
	return 0
}

// sortRules orders rules by descending confidence, then support, then
// key order — the presentation order shared by every Rules variant.
func sortRules(out []Rule) {
	slices.SortFunc(out, compareRules)
}

// ruleHeap is a min-heap under compareRules' ranking: the root is the
// worst rule currently kept, so a bounded top-K selection evicts it
// when a better candidate arrives.
type ruleHeap []Rule

func (h ruleHeap) Len() int           { return len(h) }
func (h ruleHeap) Less(i, j int) bool { return compareRules(h[i], h[j]) > 0 }
func (h ruleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ruleHeap) Push(x any)        { *h = append(*h, x.(Rule)) }
func (h *ruleHeap) Pop() any          { old := *h; n := len(old); r := old[n-1]; *h = old[:n-1]; return r }

// ruleSink accumulates candidate rules. With limit <= 0 it keeps
// everything and finish() full-sorts; with a positive limit it keeps
// only the limit best via the min-heap, so extraction never
// materializes more than limit rules.
type ruleSink struct {
	limit int
	rules ruleHeap
}

func newRuleSink(limit int) *ruleSink {
	s := &ruleSink{limit: limit}
	if limit > 0 {
		s.rules = make(ruleHeap, 0, limit)
	}
	return s
}

func (s *ruleSink) add(r Rule) {
	if s.limit <= 0 {
		s.rules = append(s.rules, r)
		return
	}
	if len(s.rules) < s.limit {
		heap.Push(&s.rules, r)
		return
	}
	if compareRules(r, s.rules[0]) < 0 { // beats the worst kept rule
		s.rules[0] = r
		heap.Fix(&s.rules, 0)
	}
}

// addPair emits the up-to-two directional rules of one pair entry into
// the sink: the shared candidate-generation step of Analyzer.Rules,
// Snapshot.Rules, RawSnapshot.Rules, and MergeIndex.TopRules. The
// caller has already applied minSupport to count; itemCount resolves
// an antecedent to its item counter (0 = absent).
func (s *ruleSink) addPair(p blktrace.Pair, count uint32, minConfidence float64, itemCount func(blktrace.Extent) uint32) {
	for _, dir := range [2][2]blktrace.Extent{{p.A, p.B}, {p.B, p.A}} {
		from, to := dir[0], dir[1]
		if from == to {
			continue
		}
		fromCount := itemCount(from)
		if fromCount == 0 {
			continue
		}
		conf := float64(count) / float64(fromCount)
		if conf > 1 {
			conf = 1
		}
		if conf < minConfidence {
			continue
		}
		s.add(Rule{From: from, To: to, Support: count, Confidence: conf})
	}
}

// finish sorts and returns the kept rules.
func (s *ruleSink) finish() []Rule {
	sortRules(s.rules)
	if len(s.rules) == 0 {
		return nil
	}
	return s.rules
}
