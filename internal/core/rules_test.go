package core

import (
	"testing"

	"daccor/internal/blktrace"
)

func TestRulesDirectionalConfidence(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 64, PairCapacity: 64})
	inode := ext(10, 1)
	data := ext(100, 8)
	// inode appears 10 times; 5 of those together with data; data
	// appears only in those 5.
	for i := 0; i < 5; i++ {
		a.Process([]blktrace.Extent{inode, data})
	}
	for i := 0; i < 5; i++ {
		a.Process([]blktrace.Extent{inode, ext(uint64(1000+i), 1)})
	}
	rules := a.Rules(5, 0)
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2 (both directions)", len(rules))
	}
	// data → inode has confidence 1.0 (data never appears alone);
	// inode → data has confidence 0.5.
	if rules[0].From != data || rules[0].To != inode || rules[0].Confidence != 1.0 {
		t.Errorf("strongest rule = %+v, want data→inode at 1.0", rules[0])
	}
	if rules[1].From != inode || rules[1].To != data || rules[1].Confidence != 0.5 {
		t.Errorf("second rule = %+v, want inode→data at 0.5", rules[1])
	}
	if rules[0].Support != 5 || rules[1].Support != 5 {
		t.Errorf("supports = %d, %d; want 5", rules[0].Support, rules[1].Support)
	}
}

func TestRulesThresholds(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 64, PairCapacity: 64})
	x, y := ext(1, 1), ext(2, 1)
	for i := 0; i < 3; i++ {
		a.Process([]blktrace.Extent{x, y})
	}
	a.Process([]blktrace.Extent{x, ext(99, 1)}) // x: 4, y: 3, pair: 3
	if got := a.Rules(4, 0); len(got) != 0 {
		t.Errorf("minSupport 4 should exclude the pair, got %v", got)
	}
	// Confidence x→y = 3/4, y→x = 1; filter at 0.9.
	rules := a.Rules(3, 0.9)
	if len(rules) != 1 || rules[0].From != y {
		t.Errorf("Rules(3, 0.9) = %v, want only y→x", rules)
	}
}

func TestRulesSkipEvictedAntecedent(t *testing.T) {
	// Item table of 1 slot/tier churns extents out while the pair
	// table remembers the pair; rules for evicted antecedents are
	// skipped rather than fabricated.
	a := mustAnalyzer(t, Config{ItemCapacity: 1, PairCapacity: 8})
	x, y := ext(1, 1), ext(2, 1)
	a.Process([]blktrace.Extent{x, y})
	a.Process([]blktrace.Extent{x, y})
	// Churn the item table with singles.
	a.Process([]blktrace.Extent{ext(50, 1)})
	a.Process([]blktrace.Extent{ext(51, 1)})
	rules := a.Rules(2, 0)
	for _, r := range rules {
		if _, ok := a.Items().Count(r.From); !ok {
			t.Errorf("rule with evicted antecedent: %+v", r)
		}
	}
}

func TestRulesConfidenceClamped(t *testing.T) {
	// Force an item counter below its pair counter: evict the item,
	// then re-insert it once while the pair entry survives.
	a := mustAnalyzer(t, Config{ItemCapacity: 1, PairCapacity: 8})
	x, y := ext(1, 1), ext(2, 1)
	for i := 0; i < 4; i++ {
		a.Process([]blktrace.Extent{x, y}) // pair count 4; items churn
	}
	for _, r := range a.Rules(1, 0) {
		if r.Confidence > 1 {
			t.Errorf("confidence %v > 1 for %+v", r.Confidence, r)
		}
	}
}

func TestRulesDeterministicOrder(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 64, PairCapacity: 64})
	for i := 0; i < 3; i++ {
		a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
		a.Process([]blktrace.Extent{ext(3, 1), ext(4, 1)})
	}
	r1 := a.Rules(1, 0)
	r2 := a.Rules(1, 0)
	if len(r1) != 4 {
		t.Fatalf("rules = %d, want 4", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("rule order not deterministic")
		}
	}
}
