// Package core implements the paper's primary contribution: the online
// analysis module that characterizes data access correlations in real
// time using a bounded-memory synopsis.
//
// The synopsis consists of two two-tier tables inspired by ARC
// (Megiddo & Modha, FAST '03): an item table of individual extents and
// a correlation table of extent pairs seen together in a transaction.
// Each table keeps a tier T1 of entries seen infrequently and a tier T2
// of entries seen frequently; both tiers are LRU lists of fixed
// capacity. Unlike ARC there are no ghost lists and no adaptive tier
// sizing; instead of immediate eviction, entries can be demoted to the
// LRU end of their tier, making them next in line for eviction. This
// blends the three dimensions the paper cares about: sequentiality
// (extents), frequency (tier promotion by counter), and recency (LRU).
package core

import "fmt"

// TouchResult describes what a Table.Touch call did.
type TouchResult int

const (
	// Inserted: the key was absent and was inserted into T1.
	Inserted TouchResult = iota
	// HitT1: the key was found in T1 (no promotion).
	HitT1
	// HitT2: the key was found in T2.
	HitT2
	// Promoted: the key was found in T1 and its counter reached the
	// promote threshold, moving it to T2.
	Promoted
)

// String names the result for logs and tests.
func (r TouchResult) String() string {
	switch r {
	case Inserted:
		return "inserted"
	case HitT1:
		return "hitT1"
	case HitT2:
		return "hitT2"
	case Promoted:
		return "promoted"
	}
	return fmt.Sprintf("TouchResult(%d)", int(r))
}

// Tier identifies which tier an entry lives in.
type Tier int

const (
	// TierNone means the key is not present.
	TierNone Tier = 0
	// Tier1 holds entries seen infrequently (once, below threshold).
	Tier1 Tier = 1
	// Tier2 holds entries seen frequently (promoted).
	Tier2 Tier = 2
)

// entry is a node in one of the two intrusive LRU lists.
type entry[K comparable] struct {
	key        K
	count      uint32
	tier       Tier
	prev, next *entry[K]
}

// lruList is an intrusive doubly linked list; front is MRU, back is LRU.
// The zero value is an empty list.
type lruList[K comparable] struct {
	front, back *entry[K]
	size        int
}

func (l *lruList[K]) pushFront(e *entry[K]) {
	e.prev = nil
	e.next = l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
	l.size++
}

func (l *lruList[K]) remove(e *entry[K]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	l.size--
}

func (l *lruList[K]) moveToFront(e *entry[K]) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

func (l *lruList[K]) moveToBack(e *entry[K]) {
	if l.back == e {
		return
	}
	l.remove(e)
	// push back
	e.next = nil
	e.prev = l.back
	if l.back != nil {
		l.back.next = e
	}
	l.back = e
	if l.front == nil {
		l.front = e
	}
	l.size++
}

// TableConfig configures a two-tier table.
type TableConfig struct {
	// Capacity1 and Capacity2 are the entry capacities of T1 and T2.
	// The paper uses equal sizes (C each) but the split is tunable for
	// the tier-ratio ablation.
	Capacity1, Capacity2 int
	// PromoteThreshold is the counter value at which a T1 entry is
	// promoted to T2. The paper promotes "upon a cache hit in the
	// first [tier]", i.e. on the second sighting; that is threshold 2.
	PromoteThreshold uint32
}

// DefaultPromoteThreshold promotes on the second sighting, matching the
// paper's "items are promoted to the second tier upon a cache hit in
// the first".
const DefaultPromoteThreshold = 2

func (c TableConfig) validate() error {
	if c.Capacity1 <= 0 || c.Capacity2 <= 0 {
		return fmt.Errorf("core: tier capacities must be positive (got %d, %d)", c.Capacity1, c.Capacity2)
	}
	if c.PromoteThreshold < 2 {
		return fmt.Errorf("core: promote threshold must be >= 2 (got %d)", c.PromoteThreshold)
	}
	return nil
}

// Table is a fixed-capacity two-tier LRU/frequency table over keys of
// type K. All operations are O(1). Table is not safe for concurrent
// use; the analyzer serializes access.
type Table[K comparable] struct {
	cfg     TableConfig
	t1, t2  lruList[K]
	index   map[K]*entry[K]
	onEvict func(K, uint32) // key and its count at eviction time

	evictions  uint64
	promotions uint64
}

// NewTable returns an empty table. onEvict, if non-nil, is called with
// the key and final counter of every entry the table discards (from
// either tier); it must not call back into the table.
func NewTable[K comparable](cfg TableConfig, onEvict func(K, uint32)) (*Table[K], error) {
	if cfg.PromoteThreshold == 0 {
		cfg.PromoteThreshold = DefaultPromoteThreshold
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The size hint is only an optimisation; cap it so a table with a
	// huge configured capacity (legitimate, or from a forged snapshot
	// header) does not pre-allocate gigabytes before any entry exists.
	hint := cfg.Capacity1 + cfg.Capacity2
	if hint > 1<<20 {
		hint = 1 << 20
	}
	return &Table[K]{
		cfg:     cfg,
		index:   make(map[K]*entry[K], hint),
		onEvict: onEvict,
	}, nil
}

func (t *Table[K]) evict(l *lruList[K], e *entry[K]) {
	l.remove(e)
	delete(t.index, e.key)
	t.evictions++
	if t.onEvict != nil {
		t.onEvict(e.key, e.count)
	}
}

// Touch records one sighting of key k: a hit moves the entry to the MRU
// position of its tier and increments its counter (promoting T1→T2 at
// the threshold, evicting the T2 LRU victim if T2 is full); a miss
// inserts the key at the T1 MRU position, evicting the T1 LRU victim if
// T1 is full.
func (t *Table[K]) Touch(k K) TouchResult {
	if e, ok := t.index[k]; ok {
		e.count++
		switch e.tier {
		case Tier1:
			if e.count >= t.cfg.PromoteThreshold {
				t.t1.remove(e)
				if t.t2.size >= t.cfg.Capacity2 {
					t.evict(&t.t2, t.t2.back)
				}
				e.tier = Tier2
				t.t2.pushFront(e)
				t.promotions++
				return Promoted
			}
			t.t1.moveToFront(e)
			return HitT1
		default: // Tier2
			t.t2.moveToFront(e)
			return HitT2
		}
	}
	if t.t1.size >= t.cfg.Capacity1 {
		t.evict(&t.t1, t.t1.back)
	}
	e := &entry[K]{key: k, count: 1, tier: Tier1}
	t.t1.pushFront(e)
	t.index[k] = e
	return Inserted
}

// Demote moves the entry for k to the LRU end of its tier, marking it
// next for eviction without discarding its counter — the paper's
// "reduce the relevancy of an entry without immediate eviction". It
// reports whether the key was present.
func (t *Table[K]) Demote(k K) bool {
	e, ok := t.index[k]
	if !ok {
		return false
	}
	switch e.tier {
	case Tier1:
		t.t1.moveToBack(e)
	default:
		t.t2.moveToBack(e)
	}
	return true
}

// Remove deletes the entry for k without invoking the eviction
// callback, reporting whether it was present.
func (t *Table[K]) Remove(k K) bool {
	e, ok := t.index[k]
	if !ok {
		return false
	}
	switch e.tier {
	case Tier1:
		t.t1.remove(e)
	default:
		t.t2.remove(e)
	}
	delete(t.index, k)
	return true
}

// Count returns the sighting counter for k and whether it is present.
func (t *Table[K]) Count(k K) (uint32, bool) {
	e, ok := t.index[k]
	if !ok {
		return 0, false
	}
	return e.count, true
}

// TierOf returns which tier holds k (TierNone if absent).
func (t *Table[K]) TierOf(k K) Tier {
	e, ok := t.index[k]
	if !ok {
		return TierNone
	}
	return e.tier
}

// Len returns the total number of entries across both tiers.
func (t *Table[K]) Len() int { return t.t1.size + t.t2.size }

// LenT1 returns the number of entries in T1.
func (t *Table[K]) LenT1() int { return t.t1.size }

// LenT2 returns the number of entries in T2.
func (t *Table[K]) LenT2() int { return t.t2.size }

// Capacity returns the total entry capacity (T1 + T2).
func (t *Table[K]) Capacity() int { return t.cfg.Capacity1 + t.cfg.Capacity2 }

// Evictions returns the number of entries discarded so far.
func (t *Table[K]) Evictions() uint64 { return t.evictions }

// Promotions returns the number of T1→T2 promotions so far.
func (t *Table[K]) Promotions() uint64 { return t.promotions }

// Entry is an exported view of one table entry.
type Entry[K comparable] struct {
	Key   K
	Count uint32
	Tier  Tier
}

// Entries returns all entries with Count >= minCount, T2 first, each
// tier in MRU→LRU order. minCount 0 or 1 returns everything.
func (t *Table[K]) Entries(minCount uint32) []Entry[K] {
	out := make([]Entry[K], 0, t.Len())
	for _, l := range []*lruList[K]{&t.t2, &t.t1} {
		for e := l.front; e != nil; e = e.next {
			if e.count >= minCount {
				out = append(out, Entry[K]{Key: e.key, Count: e.count, Tier: e.tier})
			}
		}
	}
	return out
}

// checkInvariants verifies structural invariants; it is used by tests
// (exposed via an export_test shim) and costs O(n).
func (t *Table[K]) checkInvariants() error {
	if t.t1.size > t.cfg.Capacity1 {
		return fmt.Errorf("T1 over capacity: %d > %d", t.t1.size, t.cfg.Capacity1)
	}
	if t.t2.size > t.cfg.Capacity2 {
		return fmt.Errorf("T2 over capacity: %d > %d", t.t2.size, t.cfg.Capacity2)
	}
	seen := 0
	for tierNo, l := range map[Tier]*lruList[K]{Tier1: &t.t1, Tier2: &t.t2} {
		n := 0
		var prev *entry[K]
		for e := l.front; e != nil; e = e.next {
			if e.tier != tierNo {
				return fmt.Errorf("entry %v in list %d has tier %d", e.key, tierNo, e.tier)
			}
			if e.prev != prev {
				return fmt.Errorf("broken prev link at %v", e.key)
			}
			if idx, ok := t.index[e.key]; !ok || idx != e {
				return fmt.Errorf("index mismatch for %v", e.key)
			}
			if tierNo == Tier2 && e.count < t.cfg.PromoteThreshold {
				return fmt.Errorf("T2 entry %v has count %d below threshold", e.key, e.count)
			}
			prev = e
			n++
		}
		if l.back != prev {
			return fmt.Errorf("back pointer mismatch in tier %d", tierNo)
		}
		if n != l.size {
			return fmt.Errorf("tier %d size %d, counted %d", tierNo, l.size, n)
		}
		seen += n
	}
	if seen != len(t.index) {
		return fmt.Errorf("index has %d entries, lists have %d", len(t.index), seen)
	}
	return nil
}
