// Package core implements the paper's primary contribution: the online
// analysis module that characterizes data access correlations in real
// time using a bounded-memory synopsis.
//
// The synopsis consists of two two-tier tables inspired by ARC
// (Megiddo & Modha, FAST '03): an item table of individual extents and
// a correlation table of extent pairs seen together in a transaction.
// Each table keeps a tier T1 of entries seen infrequently and a tier T2
// of entries seen frequently; both tiers are LRU lists of fixed
// capacity. Unlike ARC there are no ghost lists and no adaptive tier
// sizing; instead of immediate eviction, entries can be demoted to the
// LRU end of their tier, making them next in line for eviction. This
// blends the three dimensions the paper cares about: sequentiality
// (extents), frequency (tier promotion by counter), and recency (LRU).
package core

import (
	"fmt"
	"math"
)

// TouchResult describes what a Table.Touch call did.
type TouchResult int

const (
	// Inserted: the key was absent and was inserted into T1.
	Inserted TouchResult = iota
	// HitT1: the key was found in T1 (no promotion).
	HitT1
	// HitT2: the key was found in T2.
	HitT2
	// Promoted: the key was found in T1 and its counter reached the
	// promote threshold, moving it to T2.
	Promoted
)

// String names the result for logs and tests.
func (r TouchResult) String() string {
	switch r {
	case Inserted:
		return "inserted"
	case HitT1:
		return "hitT1"
	case HitT2:
		return "hitT2"
	case Promoted:
		return "promoted"
	}
	return fmt.Sprintf("TouchResult(%d)", int(r))
}

// Tier identifies which tier an entry lives in.
type Tier int

const (
	// TierNone means the key is not present.
	TierNone Tier = 0
	// Tier1 holds entries seen infrequently (once, below threshold).
	Tier1 Tier = 1
	// Tier2 holds entries seen frequently (promoted).
	Tier2 Tier = 2
)

// nilSlot is the null arena index, playing the role a nil pointer did
// when entries were individually heap-allocated.
const nilSlot int32 = -1

// entry is a node in the table's entry arena. Entries are linked into
// one of the two intrusive LRU lists by arena index rather than by
// pointer: slots are stable for the life of an entry (the arena only
// grows, never compacts), 32-bit indices halve the link footprint on
// 64-bit hosts, and a slab of entries is one allocation instead of one
// per insert. A free entry is chained into the free list through its
// next field and carries tier TierNone.
type entry[K comparable] struct {
	key        K
	count      uint32
	tier       Tier
	prev, next int32
}

// lruList is an intrusive doubly linked list of arena slots; front is
// MRU, back is LRU. Link updates live on Table (they need the arena).
type lruList struct {
	front, back int32
	size        int
}

func newLRUList() lruList { return lruList{front: nilSlot, back: nilSlot} }

func (t *Table[K]) listPushFront(l *lruList, s int32) {
	e := &t.arena[s]
	e.prev = nilSlot
	e.next = l.front
	if l.front != nilSlot {
		t.arena[l.front].prev = s
	}
	l.front = s
	if l.back == nilSlot {
		l.back = s
	}
	l.size++
}

func (t *Table[K]) listPushBack(l *lruList, s int32) {
	e := &t.arena[s]
	e.next = nilSlot
	e.prev = l.back
	if l.back != nilSlot {
		t.arena[l.back].next = s
	}
	l.back = s
	if l.front == nilSlot {
		l.front = s
	}
	l.size++
}

func (t *Table[K]) listRemove(l *lruList, s int32) {
	e := &t.arena[s]
	if e.prev != nilSlot {
		t.arena[e.prev].next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nilSlot {
		t.arena[e.next].prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nilSlot, nilSlot
	l.size--
}

func (t *Table[K]) listMoveToFront(l *lruList, s int32) {
	if l.front == s {
		return
	}
	t.listRemove(l, s)
	t.listPushFront(l, s)
}

func (t *Table[K]) listMoveToBack(l *lruList, s int32) {
	if l.back == s {
		return
	}
	t.listRemove(l, s)
	t.listPushBack(l, s)
}

// TableConfig configures a two-tier table.
type TableConfig struct {
	// Capacity1 and Capacity2 are the entry capacities of T1 and T2.
	// The paper uses equal sizes (C each) but the split is tunable for
	// the tier-ratio ablation.
	Capacity1, Capacity2 int
	// PromoteThreshold is the counter value at which a T1 entry is
	// promoted to T2. The paper promotes "upon a cache hit in the
	// first [tier]", i.e. on the second sighting; that is threshold 2.
	PromoteThreshold uint32
}

// DefaultPromoteThreshold promotes on the second sighting, matching the
// paper's "items are promoted to the second tier upon a cache hit in
// the first".
const DefaultPromoteThreshold = 2

func (c TableConfig) validate() error {
	if c.Capacity1 <= 0 || c.Capacity2 <= 0 {
		return fmt.Errorf("core: tier capacities must be positive (got %d, %d)", c.Capacity1, c.Capacity2)
	}
	if int64(c.Capacity1)+int64(c.Capacity2) > int64(math.MaxInt32) {
		return fmt.Errorf("core: total capacity %d exceeds the 2^31-1 arena slot limit",
			int64(c.Capacity1)+int64(c.Capacity2))
	}
	if c.PromoteThreshold < 2 {
		return fmt.Errorf("core: promote threshold must be >= 2 (got %d)", c.PromoteThreshold)
	}
	return nil
}

// arenaMaxPrealloc caps the entry slab (and index hint) reserved up
// front, so a table with a huge configured capacity (legitimate, or
// from a forged snapshot header) does not pre-allocate gigabytes before
// any entry exists. Beyond this the arena grows by amortized append,
// still never shrinking — slots stay stable and reusable.
const arenaMaxPrealloc = 1 << 20

// Table is a fixed-capacity two-tier LRU/frequency table over keys of
// type K. All operations are O(1). Table is not safe for concurrent
// use; the analyzer serializes access.
//
// Entries live in a pre-allocated arena and evicted slots are recycled
// through a free list, so after warm-up the steady-state Touch path
// performs no heap allocation.
type Table[K comparable] struct {
	cfg     TableConfig
	arena   []entry[K] // entry slab; grows to at most Capacity1+Capacity2
	free    int32      // head of the free-slot list, chained via entry.next
	freeLen int
	t1, t2  lruList
	// idx maps keys to arena slots via flat open addressing (see
	// oaindex.go) instead of a Go map: probe sequences stay within one
	// or two cache lines and the steady-state Touch path pays no
	// map-bucket indirection.
	idx     tableIndex
	onEvict func(K, uint32) // key and its count at eviction time
	// onEvictSlot, when set, additionally reports the evicted entry's
	// arena slot — the analyzer threads its intrusive pair-membership
	// links through slots and needs the index to unlink in O(1). It is
	// called before the slot is recycled, so keyAt(slot) is still valid
	// inside the callback. Like onEvict it must not call back into the
	// table.
	onEvictSlot func(int32, K, uint32)

	evictions  uint64
	promotions uint64
}

// NewTable returns an empty table. onEvict, if non-nil, is called with
// the key and final counter of every entry the table discards (from
// either tier); it must not call back into the table.
func NewTable[K comparable](cfg TableConfig, onEvict func(K, uint32)) (*Table[K], error) {
	if cfg.PromoteThreshold == 0 {
		cfg.PromoteThreshold = DefaultPromoteThreshold
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hint := cfg.Capacity1 + cfg.Capacity2
	if hint > arenaMaxPrealloc {
		hint = arenaMaxPrealloc
	}
	t := &Table[K]{
		cfg:     cfg,
		arena:   make([]entry[K], 0, hint),
		free:    nilSlot,
		t1:      newLRUList(),
		t2:      newLRUList(),
		onEvict: onEvict,
	}
	t.idx.indexInit(hint)
	return t, nil
}

// alloc takes a slot from the free list, or extends the arena while it
// is still below total capacity (the only allocating path, exercised
// only during warm-up).
func (t *Table[K]) alloc(k K, count uint32, tier Tier) int32 {
	if s := t.free; s != nilSlot {
		t.free = t.arena[s].next
		t.freeLen--
		t.arena[s] = entry[K]{key: k, count: count, tier: tier, prev: nilSlot, next: nilSlot}
		return s
	}
	t.arena = append(t.arena, entry[K]{key: k, count: count, tier: tier, prev: nilSlot, next: nilSlot})
	return int32(len(t.arena) - 1)
}

// freeSlot recycles an arena slot onto the free list, clearing the key
// so stale state cannot leak into a future occupant.
func (t *Table[K]) freeSlot(s int32) {
	t.arena[s] = entry[K]{tier: TierNone, prev: nilSlot, next: t.free}
	t.free = s
	t.freeLen++
}

// keyAt reads the key stored in an arena slot. Callers must hold a live
// slot (from touch, or inside an eviction callback).
func (t *Table[K]) keyAt(s int32) K { return t.arena[s].key }

func (t *Table[K]) evict(l *lruList, s int32) {
	k, c := t.arena[s].key, t.arena[s].count
	t.listRemove(l, s)
	t.indexDelete(hashOf(t.idx.seed, k), k)
	t.evictions++
	if t.onEvictSlot != nil {
		t.onEvictSlot(s, k, c)
	}
	if t.onEvict != nil {
		t.onEvict(k, c)
	}
	t.freeSlot(s)
}

// Touch records one sighting of key k: a hit moves the entry to the MRU
// position of its tier and increments its counter (promoting T1→T2 at
// the threshold, evicting the T2 LRU victim if T2 is full); a miss
// inserts the key at the T1 MRU position, evicting the T1 LRU victim if
// T1 is full.
func (t *Table[K]) Touch(k K) TouchResult {
	r, _ := t.touch(k)
	return r
}

// touch is Touch plus the arena slot now holding k, which the analyzer
// uses to maintain its intrusive pair-membership lists.
func (t *Table[K]) touch(k K) (TouchResult, int32) {
	h := hashOf(t.idx.seed, k)
	if s := t.indexLookup(h, k); s != nilSlot {
		e := &t.arena[s]
		e.count++
		switch e.tier {
		case Tier1:
			if e.count >= t.cfg.PromoteThreshold {
				t.listRemove(&t.t1, s)
				if t.t2.size >= t.cfg.Capacity2 {
					t.evict(&t.t2, t.t2.back)
				}
				t.arena[s].tier = Tier2
				t.listPushFront(&t.t2, s)
				t.promotions++
				return Promoted, s
			}
			t.listMoveToFront(&t.t1, s)
			return HitT1, s
		default: // Tier2
			t.listMoveToFront(&t.t2, s)
			return HitT2, s
		}
	}
	if t.t1.size >= t.cfg.Capacity1 {
		// Eviction backward-shifts the index, so the insert below must
		// re-probe from k's home slot rather than reuse a position
		// found before the shift; indexInsert does exactly that.
		t.evict(&t.t1, t.t1.back)
	}
	s := t.alloc(k, 1, Tier1)
	t.listPushFront(&t.t1, s)
	t.indexInsert(h, s)
	return Inserted, s
}

// Demote moves the entry for k to the LRU end of its tier, marking it
// next for eviction without discarding its counter — the paper's
// "reduce the relevancy of an entry without immediate eviction". It
// reports whether the key was present.
func (t *Table[K]) Demote(k K) bool {
	s := t.lookup(k)
	if s == nilSlot {
		return false
	}
	switch t.arena[s].tier {
	case Tier1:
		t.listMoveToBack(&t.t1, s)
	default:
		t.listMoveToBack(&t.t2, s)
	}
	return true
}

// Remove deletes the entry for k without invoking the eviction
// callback, reporting whether it was present.
func (t *Table[K]) Remove(k K) bool {
	h := hashOf(t.idx.seed, k)
	s := t.indexLookup(h, k)
	if s == nilSlot {
		return false
	}
	switch t.arena[s].tier {
	case Tier1:
		t.listRemove(&t.t1, s)
	default:
		t.listRemove(&t.t2, s)
	}
	t.indexDelete(h, k)
	t.freeSlot(s)
	return true
}

// Count returns the sighting counter for k and whether it is present.
func (t *Table[K]) Count(k K) (uint32, bool) {
	s := t.lookup(k)
	if s == nilSlot {
		return 0, false
	}
	return t.arena[s].count, true
}

// lookup returns the arena slot holding k, or nilSlot if absent.
func (t *Table[K]) lookup(k K) int32 {
	return t.indexLookup(hashOf(t.idx.seed, k), k)
}

// TierOf returns which tier holds k (TierNone if absent).
func (t *Table[K]) TierOf(k K) Tier {
	s := t.lookup(k)
	if s == nilSlot {
		return TierNone
	}
	return t.arena[s].tier
}

// Len returns the total number of entries across both tiers.
func (t *Table[K]) Len() int { return t.t1.size + t.t2.size }

// LenT1 returns the number of entries in T1.
func (t *Table[K]) LenT1() int { return t.t1.size }

// LenT2 returns the number of entries in T2.
func (t *Table[K]) LenT2() int { return t.t2.size }

// Capacity returns the total entry capacity (T1 + T2).
func (t *Table[K]) Capacity() int { return t.cfg.Capacity1 + t.cfg.Capacity2 }

// Evictions returns the number of entries discarded so far.
func (t *Table[K]) Evictions() uint64 { return t.evictions }

// Promotions returns the number of T1→T2 promotions so far.
func (t *Table[K]) Promotions() uint64 { return t.promotions }

// Entry is an exported view of one table entry.
type Entry[K comparable] struct {
	Key   K
	Count uint32
	Tier  Tier
}

// Entries returns all entries with Count >= minCount, T2 first, each
// tier in MRU→LRU order. minCount 0 or 1 returns everything.
//
// The result is sized to the number of matching entries (counted in a
// first pass when minCount filters), not to Len(), so a high minCount
// over a large table does not allocate slots it will never fill.
func (t *Table[K]) Entries(minCount uint32) []Entry[K] {
	n := t.Len()
	if minCount > 1 {
		n = 0
		for _, l := range [...]*lruList{&t.t2, &t.t1} {
			for s := l.front; s != nilSlot; s = t.arena[s].next {
				if t.arena[s].count >= minCount {
					n++
				}
			}
		}
	}
	out := make([]Entry[K], 0, n)
	for _, l := range [...]*lruList{&t.t2, &t.t1} {
		for s := l.front; s != nilSlot; s = t.arena[s].next {
			e := &t.arena[s]
			if e.count >= minCount {
				out = append(out, Entry[K]{Key: e.key, Count: e.count, Tier: e.tier})
			}
		}
	}
	return out
}

// checkInvariants verifies structural invariants — list/index/tier
// consistency plus the arena accounting: every slot is either linked
// into exactly one tier list or chained exactly once through the free
// list (no double-free, no lost slots). It is used by tests (exposed
// via an export_test shim) and costs O(n).
func (t *Table[K]) checkInvariants() error {
	if t.t1.size > t.cfg.Capacity1 {
		return fmt.Errorf("T1 over capacity: %d > %d", t.t1.size, t.cfg.Capacity1)
	}
	if t.t2.size > t.cfg.Capacity2 {
		return fmt.Errorf("T2 over capacity: %d > %d", t.t2.size, t.cfg.Capacity2)
	}
	const (
		unseen = iota
		live
		freed
	)
	state := make([]uint8, len(t.arena))
	seen := 0
	for tierNo, l := range map[Tier]*lruList{Tier1: &t.t1, Tier2: &t.t2} {
		n := 0
		prev := nilSlot
		for s := l.front; s != nilSlot; s = t.arena[s].next {
			if s < 0 || int(s) >= len(t.arena) {
				return fmt.Errorf("tier %d links out-of-range slot %d", tierNo, s)
			}
			if state[s] != unseen {
				return fmt.Errorf("slot %d linked more than once", s)
			}
			state[s] = live
			e := &t.arena[s]
			if e.tier != tierNo {
				return fmt.Errorf("entry %v in list %d has tier %d", e.key, tierNo, e.tier)
			}
			if e.prev != prev {
				return fmt.Errorf("broken prev link at %v", e.key)
			}
			if t.lookup(e.key) != s {
				return fmt.Errorf("index mismatch for %v", e.key)
			}
			if tierNo == Tier2 && e.count < t.cfg.PromoteThreshold {
				return fmt.Errorf("T2 entry %v has count %d below threshold", e.key, e.count)
			}
			prev = s
			n++
		}
		if l.back != prev {
			return fmt.Errorf("back pointer mismatch in tier %d", tierNo)
		}
		if n != l.size {
			return fmt.Errorf("tier %d size %d, counted %d", tierNo, l.size, n)
		}
		seen += n
	}
	if seen != t.idx.used {
		return fmt.Errorf("index has %d entries, lists have %d", t.idx.used, seen)
	}
	nf := 0
	for s := t.free; s != nilSlot; s = t.arena[s].next {
		if s < 0 || int(s) >= len(t.arena) {
			return fmt.Errorf("free list links out-of-range slot %d", s)
		}
		if state[s] == live {
			return fmt.Errorf("slot %d is both live and free", s)
		}
		if state[s] == freed {
			return fmt.Errorf("slot %d freed twice (free-list cycle or double-free)", s)
		}
		state[s] = freed
		if t.arena[s].tier != TierNone {
			return fmt.Errorf("free slot %d has tier %d", s, t.arena[s].tier)
		}
		nf++
	}
	if nf != t.freeLen {
		return fmt.Errorf("free list length %d, counted %d", t.freeLen, nf)
	}
	if seen+nf != len(t.arena) {
		return fmt.Errorf("lost slots: %d live + %d free != %d arena slots", seen, nf, len(t.arena))
	}
	return t.checkIndexInvariants()
}
