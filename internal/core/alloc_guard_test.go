package core

import (
	"math/rand"
	"testing"

	"daccor/internal/blktrace"
)

// The paper's premise is that the synopsis is cheap enough to run
// inline with the I/O path. These guard tests pin the memory half of
// that claim: after warm-up (arena slab filled, index map at its final
// size, scratch buffers grown), the per-event path must not allocate.
// They run under plain `go test ./...`, so an allocation regression in
// the hot path fails tier-1, not just a benchmark eyeball.
//
// testing.AllocsPerRun floors its average, so a failure here means at
// least one allocation per run (thousands of operations) — genuine
// steady-state allocation, not incidental runtime noise.

// guardOps is the number of hot-path operations per AllocsPerRun run —
// large enough that amortized growth of any leftover buffer would
// surface as >= 1 alloc per run.
const guardOps = 4096

func TestTableTouchZeroAllocSteadyState(t *testing.T) {
	tbl, err := NewTable[blktrace.Extent](TableConfig{Capacity1: 512, Capacity2: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keyspace 3x total capacity: steady eviction + free-list reuse
	// churn, with enough re-touches to exercise promotion.
	keys := make([]blktrace.Extent, 3*1024)
	for i := range keys {
		keys[i] = blktrace.Extent{Block: uint64(i) * 8, Len: 8}
	}
	var n int
	work := func() {
		for i := 0; i < guardOps; i++ {
			tbl.Touch(keys[n%len(keys)])
			tbl.Touch(keys[n%len(keys)]) // second sighting: hit/promote path
			n++
		}
	}
	for i := 0; i < 4; i++ { // warm up: fill the arena, settle the map
		work()
	}
	if avg := testing.AllocsPerRun(20, work); avg > 0 {
		t.Errorf("Table.Touch allocates %.0f times per %d-op run at steady state, want 0", avg, 2*guardOps)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTableDemoteRemoveZeroAllocSteadyState(t *testing.T) {
	tbl, err := NewTable[uint64](TableConfig{Capacity1: 256, Capacity2: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	work := func() {
		for i := 0; i < guardOps; i++ {
			k := n % 1024
			tbl.Touch(k)
			tbl.Demote(k)
			if n%7 == 0 {
				tbl.Remove(k)
			}
			n++
		}
	}
	for i := 0; i < 4; i++ {
		work()
	}
	if avg := testing.AllocsPerRun(20, work); avg > 0 {
		t.Errorf("Touch/Demote/Remove allocate %.0f times per run at steady state, want 0", avg)
	}
}

// guardTransactions synthesizes a deterministic transaction mix with
// enough distinct extents to keep both tables churning (inserts,
// evictions, cascaded pair demotions) at steady state.
func guardTransactions(n, keyspace int, seed int64) [][]blktrace.Extent {
	rng := rand.New(rand.NewSource(seed))
	txs := make([][]blktrace.Extent, n)
	for i := range txs {
		size := 2 + rng.Intn(5)
		seen := make(map[uint64]bool, size)
		tx := make([]blktrace.Extent, 0, size)
		for len(tx) < size {
			b := uint64(rng.Intn(keyspace)) * 8
			if seen[b] {
				continue
			}
			seen[b] = true
			tx = append(tx, blktrace.Extent{Block: b, Len: 1 + uint32(rng.Intn(8))})
		}
		txs[i] = tx
	}
	return txs
}

func TestAnalyzerProcessZeroAllocSteadyState(t *testing.T) {
	a, err := NewAnalyzer(Config{ItemCapacity: 512, PairCapacity: 512})
	if err != nil {
		t.Fatal(err)
	}
	txs := guardTransactions(512, 2048, 7)
	var n int
	work := func() {
		for i := 0; i < len(txs); i++ {
			a.Process(txs[n%len(txs)])
			n++
		}
	}
	for i := 0; i < 8; i++ { // warm up both arenas, link slab, scratch buffers
		work()
	}
	if avg := testing.AllocsPerRun(20, work); avg > 0 {
		t.Errorf("Analyzer.Process allocates %.0f times per %d-transaction run at steady state, want 0",
			avg, len(txs))
	}
	if err := a.Items().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := a.Pairs().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckMembershipInvariants(); err != nil {
		t.Fatal(err)
	}
}
