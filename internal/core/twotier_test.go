package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, cfg TableConfig, onEvict func(int, uint32)) *Table[int] {
	t.Helper()
	tab, err := NewTable[int](cfg, onEvict)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

func TestTableConfigValidation(t *testing.T) {
	if _, err := NewTable[int](TableConfig{Capacity1: 0, Capacity2: 1}, nil); err == nil {
		t.Error("want error for zero Capacity1")
	}
	if _, err := NewTable[int](TableConfig{Capacity1: 1, Capacity2: -1}, nil); err == nil {
		t.Error("want error for negative Capacity2")
	}
	if _, err := NewTable[int](TableConfig{Capacity1: 1, Capacity2: 1, PromoteThreshold: 1}, nil); err == nil {
		t.Error("want error for threshold 1")
	}
	// zero threshold defaults
	tab := mustTable(t, TableConfig{Capacity1: 1, Capacity2: 1}, nil)
	if tab.cfg.PromoteThreshold != DefaultPromoteThreshold {
		t.Errorf("default threshold = %d", tab.cfg.PromoteThreshold)
	}
}

func TestTouchInsertHitPromote(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 4, Capacity2: 4, PromoteThreshold: 3}, nil)
	if r := tab.Touch(1); r != Inserted {
		t.Fatalf("first touch = %v, want inserted", r)
	}
	if tab.TierOf(1) != Tier1 {
		t.Fatal("new entry should be in T1")
	}
	if r := tab.Touch(1); r != HitT1 {
		t.Fatalf("second touch = %v, want hitT1 (threshold 3)", r)
	}
	if r := tab.Touch(1); r != Promoted {
		t.Fatalf("third touch = %v, want promoted", r)
	}
	if tab.TierOf(1) != Tier2 {
		t.Fatal("promoted entry should be in T2")
	}
	if r := tab.Touch(1); r != HitT2 {
		t.Fatalf("fourth touch = %v, want hitT2", r)
	}
	if c, ok := tab.Count(1); !ok || c != 4 {
		t.Errorf("Count = %d, %v; want 4, true", c, ok)
	}
	if tab.Promotions() != 1 {
		t.Errorf("Promotions = %d, want 1", tab.Promotions())
	}
}

func TestT1EvictsLRU(t *testing.T) {
	var evicted []int
	tab := mustTable(t, TableConfig{Capacity1: 2, Capacity2: 2},
		func(k int, _ uint32) { evicted = append(evicted, k) })
	tab.Touch(1)
	tab.Touch(2)
	tab.Touch(3) // evicts 1 (LRU)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	if tab.TierOf(1) != TierNone || tab.TierOf(2) != Tier1 || tab.TierOf(3) != Tier1 {
		t.Error("wrong residency after eviction")
	}
	if tab.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", tab.Evictions())
	}
}

func TestHitRefreshesRecency(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 2, Capacity2: 2, PromoteThreshold: 99}, nil)
	tab.Touch(1)
	tab.Touch(2)
	tab.Touch(1) // 1 becomes MRU; 2 is now LRU
	tab.Touch(3) // evicts 2
	if tab.TierOf(2) != TierNone {
		t.Error("2 should have been evicted")
	}
	if tab.TierOf(1) != Tier1 {
		t.Error("1 should have survived")
	}
}

func TestT2EvictsLRUOnPromotion(t *testing.T) {
	var evicted []int
	tab := mustTable(t, TableConfig{Capacity1: 4, Capacity2: 2},
		func(k int, _ uint32) { evicted = append(evicted, k) })
	// Promote 1, 2 into T2 (threshold 2).
	for _, k := range []int{1, 1, 2, 2} {
		tab.Touch(k)
	}
	if tab.LenT2() != 2 {
		t.Fatalf("LenT2 = %d, want 2", tab.LenT2())
	}
	// Promote 3: T2 full, its LRU (1) must go.
	tab.Touch(3)
	tab.Touch(3)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	if tab.TierOf(3) != Tier2 || tab.TierOf(2) != Tier2 {
		t.Error("3 and 2 should be in T2")
	}
}

func TestDemoteMovesToEvictionFront(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 3, Capacity2: 3, PromoteThreshold: 99}, nil)
	tab.Touch(1)
	tab.Touch(2)
	tab.Touch(3) // LRU order: 1, 2, 3 (1 oldest)
	if !tab.Demote(3) {
		t.Fatal("Demote should find 3")
	}
	tab.Touch(4) // T1 full: victim must now be 3, not 1
	if tab.TierOf(3) != TierNone {
		t.Error("demoted entry should be evicted first")
	}
	if tab.TierOf(1) == TierNone {
		t.Error("1 should have survived thanks to 3's demotion")
	}
	if tab.Demote(99) {
		t.Error("Demote of absent key should return false")
	}
}

func TestDemotePreservesCount(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 4, Capacity2: 4, PromoteThreshold: 99}, nil)
	tab.Touch(1)
	tab.Touch(1)
	tab.Touch(1)
	tab.Demote(1)
	if c, ok := tab.Count(1); !ok || c != 3 {
		t.Errorf("Count after demote = %d, %v; want 3", c, ok)
	}
}

func TestDemoteInT2(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 4, Capacity2: 2}, nil)
	for _, k := range []int{1, 1, 2, 2} { // both in T2; LRU = 1
		tab.Touch(k)
	}
	tab.Demote(2) // now T2 LRU = 2
	tab.Touch(3)
	tab.Touch(3) // promotion evicts T2 LRU = 2
	if tab.TierOf(2) != TierNone {
		t.Error("demoted T2 entry should be the promotion victim")
	}
	if tab.TierOf(1) != Tier2 {
		t.Error("1 should remain in T2")
	}
}

func TestRemove(t *testing.T) {
	evictions := 0
	tab := mustTable(t, TableConfig{Capacity1: 2, Capacity2: 2},
		func(int, uint32) { evictions++ })
	tab.Touch(1)
	tab.Touch(2)
	tab.Touch(2) // 2 promoted
	if !tab.Remove(1) || !tab.Remove(2) {
		t.Fatal("Remove should find both entries")
	}
	if tab.Remove(1) {
		t.Error("double Remove should return false")
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d after removes", tab.Len())
	}
	if evictions != 0 {
		t.Error("Remove must not invoke the eviction callback")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEntriesOrderAndFilter(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 4, Capacity2: 4}, nil)
	for _, k := range []int{1, 1, 1, 2, 2, 3} {
		tab.Touch(k)
	}
	all := tab.Entries(0)
	if len(all) != 3 {
		t.Fatalf("Entries(0) len = %d, want 3", len(all))
	}
	// T2 first: 2 is the T2 MRU (promoted after 1), then 1; then T1: 3.
	if all[0].Key != 2 || all[1].Key != 1 || all[2].Key != 3 {
		t.Errorf("order = %v", all)
	}
	if got := tab.Entries(2); len(got) != 2 {
		t.Errorf("Entries(2) len = %d, want 2", len(got))
	}
	if got := tab.Entries(3); len(got) != 1 || got[0].Key != 1 {
		t.Errorf("Entries(3) = %v", got)
	}
}

func TestSingleSlotTiers(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 1, Capacity2: 1}, nil)
	tab.Touch(1)
	tab.Touch(2) // evicts 1
	tab.Touch(2) // promotes 2
	tab.Touch(3)
	tab.Touch(3) // promotes 3, evicting 2 from T2
	if tab.TierOf(3) != Tier2 || tab.Len() != 1 {
		t.Errorf("TierOf(3)=%v Len=%d", tab.TierOf(3), tab.Len())
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestTableInvariantsQuick drives random touch/demote/remove sequences
// and checks every structural invariant after each operation batch.
func TestTableInvariantsQuick(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TableConfig{
			Capacity1:        1 + rng.Intn(8),
			Capacity2:        1 + rng.Intn(8),
			PromoteThreshold: uint32(2 + rng.Intn(3)),
		}
		tab, err := NewTable[int](cfg, nil)
		if err != nil {
			return false
		}
		for i := 0; i < int(ops); i++ {
			k := rng.Intn(12)
			switch rng.Intn(4) {
			case 0, 1:
				tab.Touch(k)
			case 2:
				tab.Demote(k)
			case 3:
				tab.Remove(k)
			}
		}
		return tab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCapacityNeverExceeded is the memory-bound property the whole
// design rests on: the table never holds more than Capacity entries.
func TestCapacityNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab, err := NewTable[int](TableConfig{Capacity1: 5, Capacity2: 5}, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			tab.Touch(rng.Intn(40))
			if tab.Len() > tab.Capacity() || tab.LenT1() > 5 || tab.LenT2() > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCounterMonotoneWhileResident(t *testing.T) {
	tab := mustTable(t, TableConfig{Capacity1: 8, Capacity2: 8}, nil)
	last := uint32(0)
	for i := 0; i < 10; i++ {
		tab.Touch(7)
		c, ok := tab.Count(7)
		if !ok || c <= last && i > 0 {
			t.Fatalf("counter not monotone: %d after %d", c, last)
		}
		last = c
	}
}

func TestTouchResultString(t *testing.T) {
	for r, want := range map[TouchResult]string{
		Inserted: "inserted", HitT1: "hitT1", HitT2: "hitT2", Promoted: "promoted",
	} {
		if r.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(r), r.String(), want)
		}
	}
	if TouchResult(42).String() != "TouchResult(42)" {
		t.Error("unknown TouchResult formatting")
	}
}
