package core

import (
	"fmt"
	"io"

	"daccor/internal/blktrace"
)

// Intra-device scale-up support: one device's synopsis can be split
// into P partition-local analyzers, each owned by its own worker, with
// an exact combine step for every read-side product. The scheme follows
// the mergeable-summary shape of the correlated heavy hitters
// literature — partition-local sketches, combined on read:
//
//   - an extent belongs to PartitionOf(extent, P);
//   - a canonical pair {A ≤ B} belongs to A's partition (the min-extent
//     partition), so the correlation table's intrusive membership lists
//     never span partitions;
//   - each partition runs an ordinary Analyzer at 1/P of the device
//     capacity (Config.Split), so the device's memory bound is
//     preserved;
//   - merged views concatenate the P captures (RawGroup), which are
//     disjoint by ownership, through MergeSnapshots.
//
// The split is exact while no partition evicts: every partition sees
// the same transactions (restricted to its owned extents and pairs), so
// entry sets, counters, and tiers equal the P=1 analyzer's. Under
// eviction pressure the approximation is partition-local — a hot
// partition sheds earlier than the device-wide table would — and
// item-eviction pair demotions apply only to partition-local pairs,
// which is exactly the ownership invariant (a pair lives where its min
// extent lives, but its max extent's item entry may live elsewhere).

// PartitionOf maps an extent to a partition in [0, parts). The hash is
// seed-free and therefore stable across processes and restarts: a
// checkpoint written by a P-partitioned device must re-split onto the
// same partition layout after a restore (SplitAnalyzer), and a fleet of
// replicas must agree on ownership.
func PartitionOf(e blktrace.Extent, parts int) int {
	if parts <= 1 {
		return 0
	}
	// splitmix64-style finalizer over the extent's 96 significant bits,
	// then a fixed-point multiply on the top 32 bits: idx = ⌊x·parts/2³²⌋
	// is uniform over [0, parts) without a modulo.
	h := e.Block ^ (uint64(e.Len) << 37) ^ uint64(e.Len)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(((h >> 32) * uint64(parts)) >> 32)
}

// Split derives the per-partition analyzer configuration: capacities
// divided by parts (floored, so the P partitions together never exceed
// the device-level bound — a combined checkpoint of P partitions must
// re-load under the device capacities). Threshold and tier ratio pass
// through unchanged.
func (c Config) Split(parts int) (Config, error) {
	if parts < 1 {
		return Config{}, fmt.Errorf("core: partitions must be >= 1 (got %d)", parts)
	}
	if parts == 1 {
		return c, nil
	}
	out := c
	out.ItemCapacity = c.ItemCapacity / parts
	out.PairCapacity = c.PairCapacity / parts
	if out.ItemCapacity < 1 || out.PairCapacity < 1 {
		return Config{}, fmt.Errorf("core: capacities (items %d, pairs %d) too small to split %d ways",
			c.ItemCapacity, c.PairCapacity, parts)
	}
	return out, nil
}

// ProcessPartitionSorted performs the partition-owned slice of one
// transaction's synopsis update: item touches for owned extents, pair
// touches for pairs whose min extent is owned. extents must be sorted
// ascending (blktrace.Extent.Compare) and deduplicated — the router
// sorts once so that for an owned extents[i], every Pair{A: extents[i],
// B: extents[j]} with j > i is already canonical and owned, and no
// per-pair ownership hash is needed in the Θ(N²) inner loop.
//
// Stats.Transactions is NOT advanced: the transaction is shared across
// partitions and counted once by the caller (the engine's router).
// Every partition of a device must be fed every transaction, each with
// its own (part, parts); partitions that own none of the extents may be
// skipped — they would touch nothing.
func (a *Analyzer) ProcessPartitionSorted(extents []blktrace.Extent, part, parts int) {
	for i, e := range extents {
		if PartitionOf(e, parts) != part {
			continue
		}
		a.stats.Extents++
		if a.items.Touch(e) == Promoted {
			a.stats.ItemPromotions++
		}
		for j := i + 1; j < len(extents); j++ {
			p := blktrace.Pair{A: e, B: extents[j]}
			a.stats.PairTouches++
			r, s := a.pairs.touch(p)
			switch r {
			case Inserted:
				a.registerPair(s, p)
			case Promoted:
				a.stats.PairPromotions++
			}
		}
	}
	a.flushDemotions()
}

// RawGroup is the captures of one device's P partition analyzers, in
// partition order. Ownership makes the captures disjoint, so merged
// products are exact combines, not approximations.
type RawGroup []*RawSnapshot

// Snapshot derives the device-level sorted export from the group,
// merging the disjoint partition captures (MergeSnapshots). For a
// single capture it equals that capture's Snapshot.
func (g RawGroup) Snapshot(minSupport uint32) Snapshot {
	if len(g) == 1 {
		return g[0].Snapshot(minSupport)
	}
	snaps := make([]Snapshot, 0, len(g))
	for _, r := range g {
		if r != nil {
			snaps = append(snaps, r.Snapshot(minSupport))
		}
	}
	return MergeSnapshots(snaps...)
}

// Rules derives device-level directional rules from the group. The
// antecedent lookup must see every item the device holds regardless of
// support, so the group is first merged at support 0 — on a single
// capture this reproduces RawSnapshot.Rules exactly.
func (g RawGroup) Rules(minSupport uint32, minConfidence float64) []Rule {
	return g.TopRules(minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0); the result is exactly Rules(...)[:limit].
func (g RawGroup) TopRules(minSupport uint32, minConfidence float64, limit int) []Rule {
	if len(g) == 1 {
		return g[0].TopRules(minSupport, minConfidence, limit)
	}
	return g.Snapshot(0).TopRules(minSupport, minConfidence, limit)
}

// Stats sums the captured per-partition processing counters. The
// caller owns the Transactions semantics: partitions never count
// transactions (see ProcessPartitionSorted), so the sum carries only
// whatever a restored partition 0 inherited; the engine adds its
// router-side transaction count on top.
func (g RawGroup) Stats() Stats {
	var t Stats
	for _, r := range g {
		if r == nil {
			continue
		}
		t.Transactions += r.stats.Transactions
		t.Extents += r.stats.Extents
		t.PairTouches += r.stats.PairTouches
		t.ItemEvictions += r.stats.ItemEvictions
		t.PairEvictions += r.stats.PairEvictions
		t.ItemPromotions += r.stats.ItemPromotions
		t.PairPromotions += r.stats.PairPromotions
		t.PairDemotions += r.stats.PairDemotions
	}
	return t
}

// EncodeMerged serialises the group as ONE device-level snapshot in the
// standard synopsis format, loadable by LoadAnalyzer under cfg's
// capacities — the combined-checkpoint path for partitioned devices
// (one file per device regardless of P, re-splittable on restore by
// SplitAnalyzer at any partition count). cfg is the device-level
// analyzer configuration; stats the device-level counters to record.
//
// Partition captures are concatenated per tier in partition order
// (each partition's run is MRU→LRU, so per-partition recency survives a
// re-split). Tier-ratio flooring can make the partitions' per-tier
// capacities sum to slightly more than the device-level tier capacity;
// entries beyond a tier's device-level bound are shed (they are the
// most-LRU survivors of their partition) and counted in the returned
// shed. With TierRatio 0 (equal tiers) nothing is ever shed.
func (g RawGroup) EncodeMerged(w io.Writer, cfg Config, stats Stats) (n int64, shed int, err error) {
	i1cap, i2cap := splitTiers(cfg.ItemCapacity, cfg.TierRatio)
	p1cap, p2cap := splitTiers(cfg.PairCapacity, cfg.TierRatio)
	var nItems, nPairs int
	for _, r := range g {
		if r == nil {
			continue
		}
		nItems += len(r.items)
		nPairs += len(r.pairs)
	}
	items := make([]Entry[blktrace.Extent], 0, nItems)
	pairs := make([]Entry[blktrace.Pair], 0, nPairs)
	var i1, i2, p1, p2 int
	for _, r := range g {
		if r == nil {
			continue
		}
		for _, e := range r.items {
			if e.Tier == Tier2 {
				if i2 >= i2cap {
					shed++
					continue
				}
				i2++
			} else {
				if i1 >= i1cap {
					shed++
					continue
				}
				i1++
			}
			items = append(items, e)
		}
		for _, e := range r.pairs {
			if e.Tier == Tier2 {
				if p2 >= p2cap {
					shed++
					continue
				}
				p2++
			} else {
				if p1 >= p1cap {
					shed++
					continue
				}
				p1++
			}
			pairs = append(pairs, e)
		}
	}
	n, err = encodeSnapshot(w, cfg, stats, items, pairs)
	return n, shed, err
}

// tierFull reports whether the given tier is at capacity, the guard
// SplitAnalyzer uses to shed instead of erroring on restore.
func (t *Table[K]) tierFull(tier Tier) bool {
	if tier == Tier2 {
		return t.t2.size >= t.cfg.Capacity2
	}
	return t.t1.size >= t.cfg.Capacity1
}

// SplitAnalyzer distributes one device-level analyzer's state onto
// parts partition-local analyzers (each at Config.Split capacity) by
// ownership hash — the restore path for a partitioned device loading a
// combined checkpoint (or adopting a template analyzer). Entries are
// re-inserted in capture order (T2 first, MRU→LRU per tier), so each
// partition preserves the source's relative recency; entries that
// overflow a partition's tier (hash skew) are shed, LRU-most first,
// and counted in shed. Device-lifetime stats move to partition 0 so
// summed partition stats reproduce the device totals.
//
// parts == 1 returns the source analyzer itself, untouched.
func SplitAnalyzer(a *Analyzer, parts int) ([]*Analyzer, int, error) {
	if parts == 1 {
		return []*Analyzer{a}, 0, nil
	}
	pcfg, err := a.Config().Split(parts)
	if err != nil {
		return nil, 0, err
	}
	out := make([]*Analyzer, parts)
	for k := range out {
		if out[k], err = NewAnalyzer(pcfg); err != nil {
			return nil, 0, err
		}
	}
	var raw RawSnapshot
	a.CaptureSnapshot(&raw)
	var shedItems, shedPairs int
	for _, e := range raw.items {
		t := out[PartitionOf(e.Key, parts)]
		if t.items.tierFull(e.Tier) {
			shedItems++
			continue
		}
		if err := t.items.restore(e.Key, e.Count, e.Tier); err != nil {
			return nil, 0, fmt.Errorf("core: split item %v: %w", e.Key, err)
		}
	}
	for _, e := range raw.pairs {
		t := out[PartitionOf(e.Key.A, parts)]
		if t.pairs.tierFull(e.Tier) {
			shedPairs++
			continue
		}
		if err := t.pairs.restore(e.Key, e.Count, e.Tier); err != nil {
			return nil, 0, fmt.Errorf("core: split pair %v: %w", e.Key, err)
		}
		t.registerPair(t.pairs.lookup(e.Key), e.Key)
	}
	st := a.stats
	st.ItemEvictions += uint64(shedItems)
	st.PairEvictions += uint64(shedPairs)
	out[0].stats = st
	return out, shedItems + shedPairs, nil
}
