package core

import (
	"sort"

	"daccor/internal/blktrace"
)

// PairCount is one correlation-table entry in a snapshot.
type PairCount struct {
	Pair  blktrace.Pair
	Count uint32
	Tier  Tier
}

// ItemCount is one item-table entry in a snapshot.
type ItemCount struct {
	Extent blktrace.Extent
	Count  uint32
	Tier   Tier
}

// Snapshot is a point-in-time export of the synopsis, used to compare
// the online result against offline FIM ground truth (Figs. 7–10) and
// to feed optimization modules.
type Snapshot struct {
	Pairs []PairCount
	Items []ItemCount
}

// Snapshot exports all entries with counter >= minSupport from both
// tables, sorted by descending counter (ties broken by key order for
// determinism).
func (a *Analyzer) Snapshot(minSupport uint32) Snapshot {
	var s Snapshot
	for _, e := range a.pairs.Entries(minSupport) {
		s.Pairs = append(s.Pairs, PairCount{Pair: e.Key, Count: e.Count, Tier: e.Tier})
	}
	for _, e := range a.items.Entries(minSupport) {
		s.Items = append(s.Items, ItemCount{Extent: e.Key, Count: e.Count, Tier: e.Tier})
	}
	s.sort()
	return s
}

// sort orders the snapshot by descending counter, ties broken by key
// order, so every export (and every merge of exports) is deterministic.
func (s *Snapshot) sort() {
	sort.Slice(s.Pairs, func(i, j int) bool {
		if s.Pairs[i].Count != s.Pairs[j].Count {
			return s.Pairs[i].Count > s.Pairs[j].Count
		}
		pi, pj := s.Pairs[i].Pair, s.Pairs[j].Pair
		if pi.A != pj.A {
			return pi.A.Less(pj.A)
		}
		return pi.B.Less(pj.B)
	})
	sort.Slice(s.Items, func(i, j int) bool {
		if s.Items[i].Count != s.Items[j].Count {
			return s.Items[i].Count > s.Items[j].Count
		}
		return s.Items[i].Extent.Less(s.Items[j].Extent)
	})
}

// PairSet returns the snapshot's pairs as a set for similarity metrics.
func (s Snapshot) PairSet() map[blktrace.Pair]struct{} {
	set := make(map[blktrace.Pair]struct{}, len(s.Pairs))
	for _, pc := range s.Pairs {
		set[pc.Pair] = struct{}{}
	}
	return set
}

// PairCounts returns the snapshot's pairs as a pair→count map.
func (s Snapshot) PairCounts() map[blktrace.Pair]uint32 {
	m := make(map[blktrace.Pair]uint32, len(s.Pairs))
	for _, pc := range s.Pairs {
		m[pc.Pair] = pc.Count
	}
	return m
}

// TopPairs returns the n highest-count pairs (all of them if n exceeds
// the snapshot size).
func (s Snapshot) TopPairs(n int) []PairCount {
	if n > len(s.Pairs) {
		n = len(s.Pairs)
	}
	return s.Pairs[:n]
}
