package core

import (
	"slices"
	"sort"

	"daccor/internal/blktrace"
)

// PairCount is one correlation-table entry in a snapshot.
type PairCount struct {
	Pair  blktrace.Pair
	Count uint32
	Tier  Tier
}

// ItemCount is one item-table entry in a snapshot.
type ItemCount struct {
	Extent blktrace.Extent
	Count  uint32
	Tier   Tier
}

// Snapshot is a point-in-time export of the synopsis, used to compare
// the online result against offline FIM ground truth (Figs. 7–10) and
// to feed optimization modules.
type Snapshot struct {
	Pairs []PairCount
	Items []ItemCount
}

// Snapshot exports all entries with counter >= minSupport from both
// tables, sorted by descending counter (ties broken by key order for
// determinism).
func (a *Analyzer) Snapshot(minSupport uint32) Snapshot {
	var s Snapshot
	for _, e := range a.pairs.Entries(minSupport) {
		s.Pairs = append(s.Pairs, PairCount{Pair: e.Key, Count: e.Count, Tier: e.Tier})
	}
	for _, e := range a.items.Entries(minSupport) {
		s.Items = append(s.Items, ItemCount{Extent: e.Key, Count: e.Count, Tier: e.Tier})
	}
	s.sort()
	return s
}

// sort orders the snapshot by descending counter, ties broken by key
// order, so every export (and every merge of exports) is deterministic.
func (s *Snapshot) sort() {
	slices.SortFunc(s.Pairs, comparePairCounts)
	slices.SortFunc(s.Items, compareItemCounts)
}

// comparePairCounts is the snapshot pair order: descending counter,
// ties broken by key. Shared by Snapshot.sort and the MergeIndex
// materializer so both produce identical orderings.
func comparePairCounts(a, b PairCount) int {
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	if a.Pair.A != b.Pair.A {
		if a.Pair.A.Less(b.Pair.A) {
			return -1
		}
		return 1
	}
	switch {
	case a.Pair.B.Less(b.Pair.B):
		return -1
	case b.Pair.B.Less(a.Pair.B):
		return 1
	}
	return 0
}

// compareItemCounts is the snapshot item order: descending counter,
// ties broken by key.
func compareItemCounts(a, b ItemCount) int {
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	switch {
	case a.Extent.Less(b.Extent):
		return -1
	case b.Extent.Less(a.Extent):
		return 1
	}
	return 0
}

// FilterSupport cuts a sorted-descending snapshot at minSupport.
// Exports and merges are ordered by descending count, so the entries
// below the threshold are exactly a suffix — the cut is two binary
// searches and reslices, no copying. minSupport <= 1 returns the input
// unchanged (every live entry has count >= 1).
func (s Snapshot) FilterSupport(minSupport uint32) Snapshot {
	if minSupport <= 1 {
		return s
	}
	np := sort.Search(len(s.Pairs), func(i int) bool { return s.Pairs[i].Count < minSupport })
	ni := sort.Search(len(s.Items), func(i int) bool { return s.Items[i].Count < minSupport })
	s.Pairs, s.Items = s.Pairs[:np], s.Items[:ni]
	if len(s.Pairs) == 0 {
		s.Pairs = nil
	}
	if len(s.Items) == 0 {
		s.Items = nil
	}
	return s
}

// PairSet returns the snapshot's pairs as a set for similarity metrics.
func (s Snapshot) PairSet() map[blktrace.Pair]struct{} {
	set := make(map[blktrace.Pair]struct{}, len(s.Pairs))
	for _, pc := range s.Pairs {
		set[pc.Pair] = struct{}{}
	}
	return set
}

// PairCounts returns the snapshot's pairs as a pair→count map.
func (s Snapshot) PairCounts() map[blktrace.Pair]uint32 {
	m := make(map[blktrace.Pair]uint32, len(s.Pairs))
	for _, pc := range s.Pairs {
		m[pc.Pair] = pc.Count
	}
	return m
}

// TopPairs returns the n highest-count pairs (all of them if n exceeds
// the snapshot size).
func (s Snapshot) TopPairs(n int) []PairCount {
	if n > len(s.Pairs) {
		n = len(s.Pairs)
	}
	return s.Pairs[:n]
}
