package core

import (
	"fmt"
	"sort"

	"daccor/internal/blktrace"
)

// Config configures the online analysis module.
type Config struct {
	// ItemCapacity is C for the item table: each of its two tiers
	// holds up to ItemCapacity extents. One entry costs 16 bytes in
	// the paper's accounting (12-byte extent + 32-bit counter).
	ItemCapacity int
	// PairCapacity is C for the correlation table: each of its two
	// tiers holds up to PairCapacity extent pairs. One entry costs
	// 28 bytes (two extents + counter). The paper uses the same C for
	// both tables, giving 88C bytes total.
	PairCapacity int
	// PromoteThreshold is the sighting count that promotes an entry
	// from T1 to T2 in both tables; 0 means DefaultPromoteThreshold.
	PromoteThreshold uint32
	// TierRatio optionally skews the T1:T2 split. 0 means equal
	// tiers, the paper's choice. A value r in (0, 1) gives T1 a
	// fraction r of the 2C entries (e.g. 0.75 makes T1 three times
	// T2). Used by the tier-split ablation.
	TierRatio float64
}

// Per-entry byte costs from the paper's memory accounting (Sec. IV-C1).
const (
	ItemEntryBytes = 16 // 64-bit block + 32-bit length + 32-bit counter
	PairEntryBytes = 28 // two extents + 32-bit counter
)

func splitTiers(c int, ratio float64) (t1, t2 int) {
	total := 2 * c
	if ratio <= 0 || ratio >= 1 {
		return c, c
	}
	t1 = int(float64(total) * ratio)
	if t1 < 1 {
		t1 = 1
	}
	if t1 > total-1 {
		t1 = total - 1
	}
	return t1, total - t1
}

// Analyzer is the online analysis module: it consumes transactions and
// maintains the synopsis data structure. Analyzer is not safe for
// concurrent use; callers (the monitor pipeline) feed it from a single
// goroutine, matching the paper's single-pass stream model.
type Analyzer struct {
	cfg   Config
	items *Table[blktrace.Extent]
	pairs *Table[blktrace.Pair]

	// pairsByExtent indexes live correlation-table entries by member
	// extent so that the eviction rule "when an extent is evicted from
	// the item table, we also demote it in the correlation table" is
	// O(pairs containing that extent).
	pairsByExtent map[blktrace.Extent]map[blktrace.Pair]struct{}

	// pendingDemote collects extents whose item-table entry was
	// evicted during the current batch of touches; their pairs are
	// demoted after the touch completes so that the pair table is not
	// mutated re-entrantly from inside its own callbacks.
	pendingDemote []blktrace.Extent

	stats Stats
}

// Stats counts what the analyzer has processed and how the tables
// behaved.
type Stats struct {
	Transactions   uint64 // transactions processed
	Extents        uint64 // extent touches (item table)
	PairTouches    uint64 // pair touches (correlation table)
	ItemEvictions  uint64
	PairEvictions  uint64
	ItemPromotions uint64
	PairPromotions uint64
	PairDemotions  uint64 // demotions triggered by item evictions
}

// Validate reports whether the configuration can build an analyzer.
// It is the core leg of the unified Config/Validate surface shared
// with monitor.Config and pipeline.Config.
func (c Config) Validate() error {
	if c.ItemCapacity <= 0 || c.PairCapacity <= 0 {
		return fmt.Errorf("core: capacities must be positive (items %d, pairs %d)",
			c.ItemCapacity, c.PairCapacity)
	}
	return nil
}

// NewAnalyzer returns an analyzer with empty tables.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Analyzer{
		cfg:           cfg,
		pairsByExtent: make(map[blktrace.Extent]map[blktrace.Pair]struct{}),
	}
	i1, i2 := splitTiers(cfg.ItemCapacity, cfg.TierRatio)
	p1, p2 := splitTiers(cfg.PairCapacity, cfg.TierRatio)
	var err error
	a.items, err = NewTable[blktrace.Extent](TableConfig{
		Capacity1:        i1,
		Capacity2:        i2,
		PromoteThreshold: cfg.PromoteThreshold,
	}, a.onItemEvict)
	if err != nil {
		return nil, err
	}
	a.pairs, err = NewTable[blktrace.Pair](TableConfig{
		Capacity1:        p1,
		Capacity2:        p2,
		PromoteThreshold: cfg.PromoteThreshold,
	}, a.onPairEvict)
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Analyzer) onItemEvict(e blktrace.Extent, _ uint32) {
	a.stats.ItemEvictions++
	a.pendingDemote = append(a.pendingDemote, e)
}

func (a *Analyzer) onPairEvict(p blktrace.Pair, _ uint32) {
	a.stats.PairEvictions++
	a.unregisterPair(p)
}

func (a *Analyzer) registerPair(p blktrace.Pair) {
	for _, e := range [...]blktrace.Extent{p.A, p.B} {
		set, ok := a.pairsByExtent[e]
		if !ok {
			set = make(map[blktrace.Pair]struct{})
			a.pairsByExtent[e] = set
		}
		set[p] = struct{}{}
		if p.A == p.B {
			break
		}
	}
}

func (a *Analyzer) unregisterPair(p blktrace.Pair) {
	for _, e := range [...]blktrace.Extent{p.A, p.B} {
		if set, ok := a.pairsByExtent[e]; ok {
			delete(set, p)
			if len(set) == 0 {
				delete(a.pairsByExtent, e)
			}
		}
		if p.A == p.B {
			break
		}
	}
}

// Process performs the single-pass update for one transaction: every
// extent is touched in the item table and every unique unordered pair
// of distinct extents is touched in the correlation table — Θ(N²) pair
// touches for N extents, which the monitor bounds with its transaction
// cap. Extents evicted from the item table have their surviving pairs
// demoted in the correlation table.
//
// The extents are assumed deduplicated (the monitor guarantees this);
// duplicates would distort correlation frequencies, as the paper notes
// for wdev.
func (a *Analyzer) Process(extents []blktrace.Extent) {
	a.stats.Transactions++
	for _, e := range extents {
		a.stats.Extents++
		switch a.items.Touch(e) {
		case Promoted:
			a.stats.ItemPromotions++
		}
	}
	for i := 0; i < len(extents); i++ {
		for j := i + 1; j < len(extents); j++ {
			p := blktrace.MakePair(extents[i], extents[j])
			a.stats.PairTouches++
			switch a.pairs.Touch(p) {
			case Inserted:
				a.registerPair(p)
			case Promoted:
				a.stats.PairPromotions++
			}
		}
	}
	a.flushDemotions()
}

// flushDemotions applies the item-eviction → pair-demotion rule for
// every item evicted during the last batch of touches. Pairs of one
// evicted extent are demoted in canonical order so the analyzer is
// fully deterministic (map iteration order must not leak into the LRU
// order, or replays and restored snapshots would diverge).
func (a *Analyzer) flushDemotions() {
	var batch []blktrace.Pair
	for _, e := range a.pendingDemote {
		batch = batch[:0]
		for p := range a.pairsByExtent[e] {
			batch = append(batch, p)
		}
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].A != batch[j].A {
				return batch[i].A.Less(batch[j].A)
			}
			return batch[i].B.Less(batch[j].B)
		})
		for _, p := range batch {
			if a.pairs.Demote(p) {
				a.stats.PairDemotions++
			}
		}
	}
	a.pendingDemote = a.pendingDemote[:0]
}

// Items exposes the item table (read-mostly; used by optimizers and
// tests).
func (a *Analyzer) Items() *Table[blktrace.Extent] { return a.items }

// Pairs exposes the correlation table.
func (a *Analyzer) Pairs() *Table[blktrace.Pair] { return a.pairs }

// Stats returns a copy of the processing counters.
func (a *Analyzer) Stats() Stats { return a.stats }

// Config returns the analyzer's configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// MemoryBytes returns the synopsis footprint under the paper's
// accounting: 16 bytes per item-table slot and 28 per correlation-table
// slot (88C total when both capacities are C).
func (a *Analyzer) MemoryBytes() int {
	return a.items.Capacity()*ItemEntryBytes + a.pairs.Capacity()*PairEntryBytes
}
