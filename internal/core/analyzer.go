package core

import (
	"fmt"
	"slices"

	"daccor/internal/blktrace"
)

// Config configures the online analysis module.
type Config struct {
	// ItemCapacity is C for the item table: each of its two tiers
	// holds up to ItemCapacity extents. One entry costs 16 bytes in
	// the paper's accounting (12-byte extent + 32-bit counter).
	ItemCapacity int
	// PairCapacity is C for the correlation table: each of its two
	// tiers holds up to PairCapacity extent pairs. One entry costs
	// 28 bytes (two extents + counter). The paper uses the same C for
	// both tables, giving 88C bytes total.
	PairCapacity int
	// PromoteThreshold is the sighting count that promotes an entry
	// from T1 to T2 in both tables; 0 means DefaultPromoteThreshold.
	PromoteThreshold uint32
	// TierRatio optionally skews the T1:T2 split. 0 means equal
	// tiers, the paper's choice. A value r in (0, 1) gives T1 a
	// fraction r of the 2C entries (e.g. 0.75 makes T1 three times
	// T2). Used by the tier-split ablation.
	TierRatio float64
}

// Per-entry byte costs from the paper's memory accounting (Sec. IV-C1).
const (
	ItemEntryBytes = 16 // 64-bit block + 32-bit length + 32-bit counter
	PairEntryBytes = 28 // two extents + 32-bit counter
)

func splitTiers(c int, ratio float64) (t1, t2 int) {
	total := 2 * c
	if ratio <= 0 || ratio >= 1 {
		return c, c
	}
	t1 = int(float64(total) * ratio)
	if t1 < 1 {
		t1 = 1
	}
	if t1 > total-1 {
		t1 = total - 1
	}
	return t1, total - t1
}

// pairLinks are one correlation-table entry's links in the intrusive
// pair-membership lists: every live pair entry is threaded into two
// doubly linked lists, one per member extent (one list when A == B),
// anchored by Analyzer.pairHeads. The links are stored in a flat slice
// parallel to the pair table's entry arena and addressed by the same
// slot index, replacing the old map[Extent]map[Pair]struct{} index —
// membership updates become pointer writes into pre-allocated memory
// instead of per-pair map insertions.
type pairLinks struct {
	nextA, prevA int32 // neighbours in A's membership list
	nextB, prevB int32 // neighbours in B's membership list
}

// Analyzer is the online analysis module: it consumes transactions and
// maintains the synopsis data structure. Analyzer is not safe for
// concurrent use; callers (the monitor pipeline) feed it from a single
// goroutine, matching the paper's single-pass stream model.
type Analyzer struct {
	cfg   Config
	items *Table[blktrace.Extent]
	pairs *Table[blktrace.Pair]

	// pairHeads anchors, per member extent, the intrusive list of live
	// correlation-table entries containing that extent, so the eviction
	// rule "when an extent is evicted from the item table, we also
	// demote it in the correlation table" is O(pairs containing that
	// extent). pairLinks[slot] carries the list links for the pair
	// entry living in arena slot `slot` of the pair table. The anchors
	// live in an open-addressing map (oaindex.go) for the same reason
	// the tables do: the Θ(N²) pair loop consults it on every insert
	// and eviction, and its size is bounded by twice the live pair
	// count.
	pairHeads *oaMap[blktrace.Extent]
	pairLinks []pairLinks

	// pendingDemote collects extents whose item-table entry was
	// evicted during the current batch of touches; their pairs are
	// demoted after the touch completes so that the pair table is not
	// mutated re-entrantly from inside its own callbacks.
	pendingDemote []blktrace.Extent
	// demoteScratch is the persistent sort buffer flushDemotions reuses
	// across transactions, keeping the steady-state path allocation-free.
	demoteScratch []blktrace.Pair
	// memberSeen is checkMembershipInvariants's reusable per-slot
	// thread-count scratch (indexed by pair arena slot), so the checker
	// stays cheap enough to run inside fuzz loops.
	memberSeen []uint8

	stats Stats
}

// Stats counts what the analyzer has processed and how the tables
// behaved.
type Stats struct {
	Transactions   uint64 // transactions processed
	Extents        uint64 // extent touches (item table)
	PairTouches    uint64 // pair touches (correlation table)
	ItemEvictions  uint64
	PairEvictions  uint64
	ItemPromotions uint64
	PairPromotions uint64
	PairDemotions  uint64 // demotions triggered by item evictions
}

// Validate reports whether the configuration can build an analyzer.
// It is the core leg of the unified Config/Validate surface shared
// with monitor.Config and pipeline.Config.
func (c Config) Validate() error {
	if c.ItemCapacity <= 0 || c.PairCapacity <= 0 {
		return fmt.Errorf("core: capacities must be positive (items %d, pairs %d)",
			c.ItemCapacity, c.PairCapacity)
	}
	return nil
}

// NewAnalyzer returns an analyzer with empty tables.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Analyzer{}
	a.cfg = cfg
	i1, i2 := splitTiers(cfg.ItemCapacity, cfg.TierRatio)
	p1, p2 := splitTiers(cfg.PairCapacity, cfg.TierRatio)
	// Each live pair anchors at most two member lists, so the head map
	// holds at most 2·(p1+p2) entries; pre-size for that (under the
	// same cap as the entry arenas) so steady state never rehashes.
	a.pairHeads = newOAMap[blktrace.Extent](min(2*(p1+p2), arenaMaxPrealloc))
	var err error
	a.items, err = NewTable[blktrace.Extent](TableConfig{
		Capacity1:        i1,
		Capacity2:        i2,
		PromoteThreshold: cfg.PromoteThreshold,
	}, a.onItemEvict)
	if err != nil {
		return nil, err
	}
	a.pairs, err = NewTable[blktrace.Pair](TableConfig{
		Capacity1:        p1,
		Capacity2:        p2,
		PromoteThreshold: cfg.PromoteThreshold,
	}, nil)
	if err != nil {
		return nil, err
	}
	a.pairs.onEvictSlot = a.onPairEvict
	return a, nil
}

func (a *Analyzer) onItemEvict(e blktrace.Extent, _ uint32) {
	a.stats.ItemEvictions++
	a.pendingDemote = append(a.pendingDemote, e)
}

// onPairEvict unthreads an evicted correlation-table entry from both
// member extents' intrusive lists. It runs before the table recycles
// the slot, so the slot index is still valid for link surgery.
func (a *Analyzer) onPairEvict(s int32, p blktrace.Pair, _ uint32) {
	a.stats.PairEvictions++
	a.unlinkMember(s, p.A)
	if p.A != p.B {
		a.unlinkMember(s, p.B)
	}
}

// memberNext returns the slot after s in e's membership list; a pair
// entry uses its A-side links when e is its A extent, B-side otherwise.
func (a *Analyzer) memberNext(s int32, e blktrace.Extent) int32 {
	if a.pairs.keyAt(s).A == e {
		return a.pairLinks[s].nextA
	}
	return a.pairLinks[s].nextB
}

func (a *Analyzer) memberPrev(s int32, e blktrace.Extent) int32 {
	if a.pairs.keyAt(s).A == e {
		return a.pairLinks[s].prevA
	}
	return a.pairLinks[s].prevB
}

func (a *Analyzer) setMemberNext(s int32, e blktrace.Extent, v int32) {
	if a.pairs.keyAt(s).A == e {
		a.pairLinks[s].nextA = v
	} else {
		a.pairLinks[s].nextB = v
	}
}

func (a *Analyzer) setMemberPrev(s int32, e blktrace.Extent, v int32) {
	if a.pairs.keyAt(s).A == e {
		a.pairLinks[s].prevA = v
	} else {
		a.pairLinks[s].prevB = v
	}
}

// linkMember pushes slot s onto the head of e's membership list.
func (a *Analyzer) linkMember(s int32, e blktrace.Extent) {
	h, _ := a.pairHeads.Get(e) // nilSlot when absent
	a.setMemberNext(s, e, h)
	a.setMemberPrev(s, e, nilSlot)
	if h != nilSlot {
		a.setMemberPrev(h, e, s)
	}
	a.pairHeads.Set(e, s)
}

// unlinkMember removes slot s from e's membership list, dropping the
// head anchor when the list empties.
func (a *Analyzer) unlinkMember(s int32, e blktrace.Extent) {
	prev, next := a.memberPrev(s, e), a.memberNext(s, e)
	if prev != nilSlot {
		a.setMemberNext(prev, e, next)
	} else if next != nilSlot {
		a.pairHeads.Set(e, next)
	} else {
		a.pairHeads.Delete(e)
	}
	if next != nilSlot {
		a.setMemberPrev(next, e, prev)
	}
}

// registerPair threads the pair entry in arena slot s into the
// membership lists of its member extents (one list when A == B).
func (a *Analyzer) registerPair(s int32, p blktrace.Pair) {
	for int(s) >= len(a.pairLinks) {
		a.pairLinks = append(a.pairLinks, pairLinks{})
	}
	a.pairLinks[s] = pairLinks{nextA: nilSlot, prevA: nilSlot, nextB: nilSlot, prevB: nilSlot}
	a.linkMember(s, p.A)
	if p.A != p.B {
		a.linkMember(s, p.B)
	}
}

// Process performs the single-pass update for one transaction: every
// extent is touched in the item table and every unique unordered pair
// of distinct extents is touched in the correlation table — Θ(N²) pair
// touches for N extents, which the monitor bounds with its transaction
// cap. Extents evicted from the item table have their surviving pairs
// demoted in the correlation table.
//
// The extents are assumed deduplicated (the monitor guarantees this);
// duplicates would distort correlation frequencies, as the paper notes
// for wdev.
func (a *Analyzer) Process(extents []blktrace.Extent) {
	a.stats.Transactions++
	for _, e := range extents {
		a.stats.Extents++
		switch a.items.Touch(e) {
		case Promoted:
			a.stats.ItemPromotions++
		}
	}
	for i := 0; i < len(extents); i++ {
		for j := i + 1; j < len(extents); j++ {
			p := blktrace.MakePair(extents[i], extents[j])
			a.stats.PairTouches++
			r, s := a.pairs.touch(p)
			switch r {
			case Inserted:
				a.registerPair(s, p)
			case Promoted:
				a.stats.PairPromotions++
			}
		}
	}
	a.flushDemotions()
}

// flushDemotions applies the item-eviction → pair-demotion rule for
// every item evicted during the last batch of touches. Pairs of one
// evicted extent are demoted in canonical order so the analyzer is
// fully deterministic (membership-list order must not leak into the
// LRU order, or replays and restored snapshots would diverge). The
// sort runs over a persistent scratch buffer with a non-capturing
// comparison function, so the steady-state path allocates nothing.
func (a *Analyzer) flushDemotions() {
	for _, e := range a.pendingDemote {
		batch := a.demoteScratch[:0]
		s, _ := a.pairHeads.Get(e) // nilSlot when absent
		for ; s != nilSlot; s = a.memberNext(s, e) {
			batch = append(batch, a.pairs.keyAt(s))
		}
		slices.SortFunc(batch, blktrace.Pair.Compare)
		for _, p := range batch {
			if a.pairs.Demote(p) {
				a.stats.PairDemotions++
			}
		}
		a.demoteScratch = batch
	}
	a.pendingDemote = a.pendingDemote[:0]
}

// checkMembershipInvariants verifies that the intrusive membership
// lists exactly mirror the live correlation-table entries: every live
// pair is threaded into each member extent's list exactly once, links
// are mutually consistent, and no list reaches a dead slot. O(pairs);
// used by tests and fuzz targets via an export_test shim.
func (a *Analyzer) checkMembershipInvariants() error {
	if err := a.pairHeads.checkInvariants(); err != nil {
		return err
	}
	// Per-slot thread counts in a reusable scratch slice (indexed by
	// pair arena slot) instead of a map allocated per call.
	if cap(a.memberSeen) < len(a.pairLinks) {
		a.memberSeen = make([]uint8, len(a.pairLinks))
	}
	seen := a.memberSeen[:len(a.pairLinks)]
	clear(seen)
	var walkErr error
	a.pairHeads.Range(func(e blktrace.Extent, h int32) bool {
		if h == nilSlot {
			walkErr = fmt.Errorf("extent %v anchors a nil head", e)
			return false
		}
		prev := nilSlot
		for s := h; s != nilSlot; s = a.memberNext(s, e) {
			if int(s) >= len(a.pairLinks) || s < 0 {
				walkErr = fmt.Errorf("extent %v list reaches out-of-range slot %d", e, s)
				return false
			}
			p := a.pairs.keyAt(s)
			if p.A != e && p.B != e {
				walkErr = fmt.Errorf("slot %d (%v) threaded into list of non-member %v", s, p, e)
				return false
			}
			if a.pairs.lookup(p) != s {
				walkErr = fmt.Errorf("slot %d (%v) in membership list is not live in the pair table", s, p)
				return false
			}
			if a.memberPrev(s, e) != prev {
				walkErr = fmt.Errorf("slot %d (%v): prev link broken in %v's list", s, p, e)
				return false
			}
			seen[s]++
			if seen[s] > 2 {
				walkErr = fmt.Errorf("slot %d threaded more than twice (cycle?)", s)
				return false
			}
			prev = s
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	// Every live pair must be threaded exactly once per distinct member.
	// Zeroing consumed counts as we go leaves any dead-slot threading
	// behind as a nonzero residue.
	for _, l := range [...]*lruList{&a.pairs.t2, &a.pairs.t1} {
		for s := l.front; s != nilSlot; s = a.pairs.arena[s].next {
			p := a.pairs.arena[s].key
			want := uint8(2)
			if p.A == p.B {
				want = 1
			}
			if seen[s] != want {
				return fmt.Errorf("pair %v (slot %d) threaded %d times, want %d", p, s, seen[s], want)
			}
			seen[s] = 0
		}
	}
	for s, n := range seen {
		if n != 0 {
			return fmt.Errorf("dead slot %d threaded %d times", s, n)
		}
	}
	return nil
}

// Items exposes the item table (read-mostly; used by optimizers and
// tests).
func (a *Analyzer) Items() *Table[blktrace.Extent] { return a.items }

// Pairs exposes the correlation table.
func (a *Analyzer) Pairs() *Table[blktrace.Pair] { return a.pairs }

// Stats returns a copy of the processing counters.
func (a *Analyzer) Stats() Stats { return a.stats }

// Config returns the analyzer's configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// MemoryBytes returns the synopsis footprint under the paper's
// accounting: 16 bytes per item-table slot and 28 per correlation-table
// slot (88C total when both capacities are C).
func (a *Analyzer) MemoryBytes() int {
	return a.items.Capacity()*ItemEntryBytes + a.pairs.Capacity()*PairEntryBytes
}
