package core

import (
	"math"
	"reflect"
	"testing"

	"daccor/internal/blktrace"
)

// ext is shared with analyzer_test.go: ext(block, length).

func pair(a, b uint64) blktrace.Pair { return blktrace.MakePair(ext(a, 1), ext(b, 1)) }

func TestMergeSnapshotsIdentity(t *testing.T) {
	s := Snapshot{
		Pairs: []PairCount{
			{Pair: pair(1, 2), Count: 9, Tier: Tier2},
			{Pair: pair(3, 4), Count: 4, Tier: Tier1},
		},
		Items: []ItemCount{
			{Extent: ext(1, 1), Count: 9, Tier: Tier2},
			{Extent: ext(2, 1), Count: 5, Tier: Tier1},
		},
	}
	if got := MergeSnapshots(s); !reflect.DeepEqual(got, s) {
		t.Errorf("MergeSnapshots(s) = %+v, want s unchanged", got)
	}
	empty := MergeSnapshots()
	if len(empty.Pairs) != 0 || len(empty.Items) != 0 {
		t.Errorf("MergeSnapshots() = %+v, want empty", empty)
	}
}

func TestMergeSnapshotsSumsAndUnions(t *testing.T) {
	a := Snapshot{
		Pairs: []PairCount{
			{Pair: pair(1, 2), Count: 5, Tier: Tier1},
			{Pair: pair(3, 4), Count: 2, Tier: Tier1},
		},
		Items: []ItemCount{
			{Extent: ext(1, 1), Count: 5, Tier: Tier1},
		},
	}
	b := Snapshot{
		Pairs: []PairCount{
			{Pair: pair(1, 2), Count: 7, Tier: Tier2}, // overlaps a: summed, max tier
			{Pair: pair(5, 6), Count: 1, Tier: Tier1}, // unique to b
		},
		Items: []ItemCount{
			{Extent: ext(1, 1), Count: 3, Tier: Tier2},
			{Extent: ext(5, 1), Count: 1, Tier: Tier1},
		},
	}
	got := MergeSnapshots(a, b)
	want := Snapshot{
		Pairs: []PairCount{
			{Pair: pair(1, 2), Count: 12, Tier: Tier2},
			{Pair: pair(3, 4), Count: 2, Tier: Tier1},
			{Pair: pair(5, 6), Count: 1, Tier: Tier1},
		},
		Items: []ItemCount{
			{Extent: ext(1, 1), Count: 8, Tier: Tier2},
			{Extent: ext(5, 1), Count: 1, Tier: Tier1},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %+v, want %+v", got, want)
	}
	// Deterministic: argument order must not matter.
	if rev := MergeSnapshots(b, a); !reflect.DeepEqual(rev, got) {
		t.Errorf("merge order-dependent: %+v vs %+v", rev, got)
	}
}

// TestMergeSnapshotsEdgeCases walks the boundary inputs of the
// aggregation layer: no devices, one device, devices disagreeing on an
// entry's tier, and per-device counters whose sum exceeds the uint32
// range (which must saturate, not wrap — a wrapped counter would bury
// the fleet's hottest pair at the bottom of the merged ranking).
func TestMergeSnapshotsEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []Snapshot
		want Snapshot
	}{
		{
			name: "empty",
			in:   nil,
			want: Snapshot{},
		},
		{
			name: "all inputs empty",
			in:   []Snapshot{{}, {}, {}},
			want: Snapshot{},
		},
		{
			name: "single device passes through",
			in: []Snapshot{{
				Pairs: []PairCount{{Pair: pair(1, 2), Count: 6, Tier: Tier2}},
				Items: []ItemCount{{Extent: ext(1, 1), Count: 6, Tier: Tier2}},
			}},
			want: Snapshot{
				Pairs: []PairCount{{Pair: pair(1, 2), Count: 6, Tier: Tier2}},
				Items: []ItemCount{{Extent: ext(1, 1), Count: 6, Tier: Tier2}},
			},
		},
		{
			name: "conflicting tiers take the max either way",
			in: []Snapshot{
				{
					Pairs: []PairCount{{Pair: pair(1, 2), Count: 1, Tier: Tier2}},
					Items: []ItemCount{{Extent: ext(1, 1), Count: 1, Tier: Tier1}},
				},
				{
					Pairs: []PairCount{{Pair: pair(1, 2), Count: 1, Tier: Tier1}},
					Items: []ItemCount{{Extent: ext(1, 1), Count: 1, Tier: Tier2}},
				},
			},
			want: Snapshot{
				Pairs: []PairCount{{Pair: pair(1, 2), Count: 2, Tier: Tier2}},
				Items: []ItemCount{{Extent: ext(1, 1), Count: 2, Tier: Tier2}},
			},
		},
		{
			name: "counter overflow saturates",
			in: []Snapshot{
				{
					Pairs: []PairCount{{Pair: pair(1, 2), Count: math.MaxUint32 - 1, Tier: Tier2}},
					Items: []ItemCount{{Extent: ext(1, 1), Count: math.MaxUint32, Tier: Tier2}},
				},
				{
					Pairs: []PairCount{
						{Pair: pair(1, 2), Count: 7, Tier: Tier2},
						{Pair: pair(3, 4), Count: 5, Tier: Tier1},
					},
					Items: []ItemCount{{Extent: ext(1, 1), Count: 1, Tier: Tier2}},
				},
			},
			want: Snapshot{
				Pairs: []PairCount{
					{Pair: pair(1, 2), Count: math.MaxUint32, Tier: Tier2},
					{Pair: pair(3, 4), Count: 5, Tier: Tier1},
				},
				Items: []ItemCount{{Extent: ext(1, 1), Count: math.MaxUint32, Tier: Tier2}},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeSnapshots(tc.in...)
			if len(got.Pairs) != len(tc.want.Pairs) || len(got.Items) != len(tc.want.Items) ||
				(len(got.Pairs) > 0 || len(got.Items) > 0) && !reflect.DeepEqual(got, tc.want) {
				t.Errorf("MergeSnapshots = %+v, want %+v", got, tc.want)
			}
			// Saturation (like summation) must be commutative.
			if len(tc.in) > 1 {
				rev := MergeSnapshots(tc.in[len(tc.in)-1], tc.in[0])
				fwd := MergeSnapshots(tc.in[0], tc.in[len(tc.in)-1])
				if !reflect.DeepEqual(rev, fwd) {
					t.Errorf("merge not commutative: %+v vs %+v", rev, fwd)
				}
			}
		})
	}
}

func TestMergeSnapshotsDeterministicTieOrder(t *testing.T) {
	a := Snapshot{Pairs: []PairCount{{Pair: pair(9, 10), Count: 3, Tier: Tier1}}}
	b := Snapshot{Pairs: []PairCount{{Pair: pair(1, 2), Count: 3, Tier: Tier1}}}
	got := MergeSnapshots(a, b)
	if got.Pairs[0].Pair != pair(1, 2) {
		t.Errorf("ties must break by key order, got %+v first", got.Pairs[0])
	}
}

// TestSnapshotRulesMatchesAnalyzer pins Snapshot.Rules to
// Analyzer.Rules: on a full export of a live analyzer the two must
// agree exactly, which is what makes merged rules the N-device
// generalization of the live single-device rules.
func TestSnapshotRulesMatchesAnalyzer(t *testing.T) {
	a, err := NewAnalyzer(Config{ItemCapacity: 64, PairCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	txs := [][]blktrace.Extent{
		{ext(1, 1), ext(2, 1)},
		{ext(1, 1), ext(2, 1), ext(3, 1)},
		{ext(1, 1), ext(2, 1)},
		{ext(2, 1), ext(3, 1)},
		{ext(4, 1), ext(5, 1)},
	}
	for _, tx := range txs {
		a.Process(tx)
	}
	for _, minSupport := range []uint32{0, 1, 2, 3} {
		for _, minConf := range []float64{0, 0.4, 0.9} {
			want := a.Rules(minSupport, minConf)
			got := a.Snapshot(0).Rules(minSupport, minConf)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Snapshot(0).Rules(%d, %v) = %+v, want %+v",
					minSupport, minConf, got, want)
			}
		}
	}
}

func TestSnapshotRulesMergedConfidence(t *testing.T) {
	// Two "devices" that both saw the pair (1,2): merged support is the
	// sum, and confidence uses the summed antecedent counts.
	dev := Snapshot{
		Pairs: []PairCount{{Pair: pair(1, 2), Count: 4, Tier: Tier1}},
		Items: []ItemCount{
			{Extent: ext(1, 1), Count: 4, Tier: Tier1},
			{Extent: ext(2, 1), Count: 8, Tier: Tier1},
		},
	}
	rules := MergeSnapshots(dev, dev).Rules(5, 0)
	if len(rules) != 2 {
		t.Fatalf("rules = %+v, want 2", rules)
	}
	for _, r := range rules {
		if r.Support != 8 {
			t.Errorf("merged support = %d, want 8", r.Support)
		}
	}
	// 1→2: 8/8 = 1.0 sorts first; 2→1: 8/16 = 0.5.
	if rules[0].Confidence != 1 || rules[1].Confidence != 0.5 {
		t.Errorf("confidences = %v, %v, want 1, 0.5", rules[0].Confidence, rules[1].Confidence)
	}
}
