package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"daccor/internal/blktrace"
)

// The MergeIndex's contract is differential: however it got to its
// current per-source states — full updates, deltas, raw captures,
// removals, anti-entropy re-feeds — its materialized union must be
// byte-identical to core.MergeSnapshots recomputed from scratch over
// the same states. These tests drive random operation streams against
// both and DeepEqual after every step, with the internal accounting
// invariants checked along the way.

// genExtent returns the id-th extent of the test keyspace.
func genExtent(id int) blktrace.Extent {
	return blktrace.Extent{Block: uint64(id) * 8, Len: 8}
}

// genSnapshot builds a random sorted source export over a small shared
// keyspace (forcing cross-source overlap). Counts occasionally sit
// near the uint32 ceiling so merged sums exercise saturation.
func genSnapshot(rng *rand.Rand, keyspace int) Snapshot {
	items := make(map[blktrace.Extent]ItemCount)
	nItems := rng.Intn(keyspace)
	for i := 0; i < nItems; i++ {
		e := genExtent(rng.Intn(keyspace))
		items[e] = ItemCount{Extent: e, Count: genCount(rng), Tier: genTier(rng)}
	}
	pairs := make(map[blktrace.Pair]PairCount)
	nPairs := rng.Intn(keyspace)
	for i := 0; i < nPairs; i++ {
		a, b := rng.Intn(keyspace), rng.Intn(keyspace)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		p := blktrace.Pair{A: genExtent(a), B: genExtent(b)}
		pairs[p] = PairCount{Pair: p, Count: genCount(rng), Tier: genTier(rng)}
	}
	var s Snapshot
	for _, ic := range items {
		s.Items = append(s.Items, ic)
	}
	for _, pc := range pairs {
		s.Pairs = append(s.Pairs, pc)
	}
	s.sort()
	return s
}

func genCount(rng *rand.Rand) uint32 {
	if rng.Intn(8) == 0 { // saturation band: summing two of these clamps
		return math.MaxUint32 - uint32(rng.Intn(1000))
	}
	return 1 + uint32(rng.Intn(1000))
}

func genTier(rng *rand.Rand) Tier {
	if rng.Intn(3) == 0 {
		return Tier2
	}
	return Tier1
}

// groundTruth recomputes the union from scratch over the model states.
func groundTruth(states map[string]Snapshot) Snapshot {
	snaps := make([]Snapshot, 0, len(states))
	for _, s := range states {
		snaps = append(snaps, s)
	}
	return MergeSnapshots(snaps...)
}

func requireUnionEqual(t *testing.T, step int, idx *MergeIndex, states map[string]Snapshot) {
	t.Helper()
	got, want := idx.Snapshot(), groundTruth(states)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: incremental union diverged from MergeSnapshots: got %d/%d pairs/items, want %d/%d",
			step, len(got.Pairs), len(got.Items), len(want.Pairs), len(want.Items))
	}
	if err := idx.checkInvariants(); err != nil {
		t.Fatalf("step %d: %v", step, err)
	}
}

func TestMergeIndexDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		idx := NewMergeIndex()
		states := make(map[string]Snapshot)
		sources := []string{"s0", "s1", "s2", "s3", "s4"}
		const keyspace = 24
		for step := 0; step < 400; step++ {
			src := sources[rng.Intn(len(sources))]
			switch op := rng.Intn(10); {
			case op < 4: // full update (covers anti-entropy re-feed)
				next := genSnapshot(rng, keyspace)
				idx.Update(src, next)
				states[src] = next
			case op < 8: // incremental delta from the current state
				next := genSnapshot(rng, keyspace)
				d := DiffSnapshots(states[src], next)
				if err := idx.ApplyDelta(src, d); err != nil {
					t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
				}
				states[src] = next
			case op < 9: // source removal replays the negative delta
				idx.Remove(src)
				delete(states, src)
			default: // conflicting delta must reject, then self-heal via Update
				if _, ok := states[src]; !ok {
					continue
				}
				bogus := SnapshotDelta{DeleteItems: []blktrace.Extent{genExtent(keyspace + 100)}}
				if err := idx.ApplyDelta(src, bogus); err == nil {
					t.Fatalf("seed %d step %d: conflicting delta applied cleanly", seed, step)
				}
				idx.Update(src, states[src])
			}
			requireUnionEqual(t, step, idx, states)
		}
		// Drain: removal all the way back to empty must converge on the
		// empty union, not a residue.
		for _, src := range sources {
			idx.Remove(src)
			delete(states, src)
			requireUnionEqual(t, -1, idx, states)
		}
		if it, p := idx.Len(); it != 0 || p != 0 {
			t.Fatalf("seed %d: drained index still holds %d items / %d pairs", seed, it, p)
		}
	}
}

// TestMergeIndexUpdateRawDifferential pins the P>1 partition path: raw
// captures fed via UpdateRaw must yield the same union as the sorted
// exports fed via Update.
func TestMergeIndexUpdateRawDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mkAnalyzer := func() *Analyzer {
		a, err := NewAnalyzer(Config{ItemCapacity: 256, PairCapacity: 256})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	analyzers := []*Analyzer{mkAnalyzer(), mkAnalyzer(), mkAnalyzer()}
	idx := NewMergeIndex()
	raws := make([]*RawSnapshot, len(analyzers))
	for i := range raws {
		raws[i] = &RawSnapshot{}
	}
	names := []string{"p0", "p1", "p2"}
	for round := 0; round < 30; round++ {
		a := analyzers[rng.Intn(len(analyzers))]
		for tx := 0; tx < 5; tx++ {
			n := 2 + rng.Intn(4)
			exts := make([]blktrace.Extent, 0, n)
			for len(exts) < n {
				exts = append(exts, genExtent(rng.Intn(64)))
			}
			a.Process(exts)
		}
		states := make(map[string]Snapshot, len(analyzers))
		for i, an := range analyzers {
			an.CaptureSnapshot(raws[i])
			idx.UpdateRaw(names[i], raws[i])
			states[names[i]] = raws[i].Snapshot(0)
		}
		requireUnionEqual(t, round, idx, states)
	}
}

// FuzzMergeIndexApply drives the maintainer with a fuzz-chosen
// operation stream and checks the differential identity plus the
// internal invariants after every operation.
func FuzzMergeIndexApply(f *testing.F) {
	f.Add(int64(1), uint8(40))
	f.Add(int64(2), uint8(10))
	f.Add(int64(987654), uint8(120))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		idx := NewMergeIndex()
		states := make(map[string]Snapshot)
		sources := []string{"a", "b", "c"}
		for step := 0; step < int(steps%80)+1; step++ {
			src := sources[rng.Intn(len(sources))]
			switch rng.Intn(4) {
			case 0:
				next := genSnapshot(rng, 12)
				idx.Update(src, next)
				states[src] = next
			case 1, 2:
				next := genSnapshot(rng, 12)
				if err := idx.ApplyDelta(src, DiffSnapshots(states[src], next)); err != nil {
					t.Fatalf("step %d: ApplyDelta: %v", step, err)
				}
				states[src] = next
			default:
				idx.Remove(src)
				delete(states, src)
			}
			got, want := idx.Snapshot(), groundTruth(states)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: union diverged", step)
			}
			if err := idx.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	})
}

// TestTopRulesEquivalence pins partial selection against the full
// sort: for every extraction surface, TopRules(limit) must equal
// Rules() truncated to limit — compareRules is total, so there is no
// tie ambiguity to hide behind.
func TestTopRulesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	snap := genSnapshot(rng, 64)
	idx := NewMergeIndex()
	idx.Update("only", snap)
	other := genSnapshot(rng, 64)
	idx.Update("other", other)
	merged := MergeSnapshots(snap, other)

	truncated := func(rules []Rule, limit int) []Rule {
		if limit <= 0 || limit >= len(rules) {
			return rules
		}
		return rules[:limit]
	}
	for _, minSupport := range []uint32{0, 2, 100} {
		for _, minConf := range []float64{0, 0.3, 0.9} {
			full := merged.Rules(minSupport, minConf)
			for _, limit := range []int{0, 1, 3, 10, 1 << 20} {
				if got, want := merged.TopRules(minSupport, minConf, limit), truncated(full, limit); !reflect.DeepEqual(got, want) {
					t.Fatalf("Snapshot.TopRules(%d,%v,%d): %d rules, want %d", minSupport, minConf, limit, len(got), len(want))
				}
				if got, want := idx.TopRules(minSupport, minConf, limit), truncated(full, limit); !reflect.DeepEqual(got, want) {
					t.Fatalf("MergeIndex.TopRules(%d,%v,%d): %d rules, want %d", minSupport, minConf, limit, len(got), len(want))
				}
			}
		}
	}

	// The live-analyzer surface: same identity from the tables.
	a, err := NewAnalyzer(Config{ItemCapacity: 512, PairCapacity: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(4)
		exts := make([]blktrace.Extent, 0, n)
		for len(exts) < n {
			exts = append(exts, genExtent(rng.Intn(48)))
		}
		a.Process(exts)
	}
	full := a.Rules(2, 0.1)
	var raw RawSnapshot
	a.CaptureSnapshot(&raw)
	for _, limit := range []int{0, 1, 5, 50} {
		if got, want := a.TopRules(2, 0.1, limit), truncated(full, limit); !reflect.DeepEqual(got, want) {
			t.Fatalf("Analyzer.TopRules(limit=%d): %d rules, want %d", limit, len(got), len(want))
		}
		if got, want := raw.TopRules(2, 0.1, limit), truncated(full, limit); !reflect.DeepEqual(got, want) {
			t.Fatalf("RawSnapshot.TopRules(limit=%d): %d rules, want %d", limit, len(got), len(want))
		}
	}
}

// TestFilterSupportSuffixCut pins the zero-copy support filter against
// the straightforward re-derivation.
func TestFilterSupportSuffixCut(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	snap := genSnapshot(rng, 48)
	for _, min := range []uint32{0, 1, 2, 10, 500, math.MaxUint32} {
		got := snap.FilterSupport(min)
		var want Snapshot
		for _, pc := range snap.Pairs {
			if pc.Count >= min {
				want.Pairs = append(want.Pairs, pc)
			}
		}
		for _, ic := range snap.Items {
			if ic.Count >= min {
				want.Items = append(want.Items, ic)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FilterSupport(%d): %d/%d, want %d/%d", min, len(got.Pairs), len(got.Items), len(want.Pairs), len(want.Items))
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = snap.FilterSupport(0) }); allocs > 0 {
		t.Errorf("FilterSupport(0) allocates %.0f times, want 0", allocs)
	}
}

// TestMergeIndexSteadyStateAllocs pins the tentpole's memory claim: a
// merged read on an unchanged-except-one-source fleet allocates a
// small constant — the two fresh output slices — regardless of how
// many sources or entries the union holds.
func TestMergeIndexSteadyStateAllocs(t *testing.T) {
	measure := func(nSources int) float64 {
		rng := rand.New(rand.NewSource(3))
		idx := NewMergeIndex()
		for i := 0; i < nSources; i++ {
			idx.Update(srcName(i), genSnapshot(rng, 32))
		}
		idx.Snapshot()
		a := genSnapshot(rng, 32)
		b := genSnapshot(rng, 32)
		flip := false
		// Warm: both alternating states pass through once so shadow and
		// union arenas reach their final sizes.
		for i := 0; i < 4; i++ {
			idx.Update("s0", a)
			idx.Snapshot()
			idx.Update("s0", b)
			idx.Snapshot()
		}
		return testing.AllocsPerRun(50, func() {
			if flip {
				idx.Update("s0", a)
			} else {
				idx.Update("s0", b)
			}
			flip = !flip
			idx.Snapshot()
		})
	}
	small, large := measure(4), measure(64)
	// Two exact-size output slices per materialize, plus incidental
	// runtime noise; the bound is deliberately loose — the invariant
	// under test is size-independence, asserted below.
	if small > 8 {
		t.Errorf("steady-state merged read allocates %.0f times, want <= 8", small)
	}
	if large > small {
		t.Errorf("allocs grew with fleet size: %0.f at 4 sources, %.0f at 64", small, large)
	}
}

func srcName(i int) string {
	return string(rune('A'+i%26)) + string(rune('a'+i/26))
}
