package core

// CheckInvariants exposes the structural invariant checker to tests.
func (t *Table[K]) CheckInvariants() error { return t.checkInvariants() }
