package core

// CheckInvariants exposes the structural invariant checker to tests.
func (t *Table[K]) CheckInvariants() error { return t.checkInvariants() }

// CheckMembershipInvariants exposes the intrusive pair-membership
// checker to tests and fuzz targets.
func (a *Analyzer) CheckMembershipInvariants() error { return a.checkMembershipInvariants() }
