package core

import (
	"testing"

	"daccor/internal/blktrace"
)

// Hot-path microbenchmarks for the synopsis. These are the numbers the
// `make bench` baseline tracks (BENCH_baseline.json): steady-state
// ns/op and — enforced separately by the alloc_guard tests — zero
// allocs/op once the entry arenas are warm.

func BenchmarkTableTouch(b *testing.B) {
	run := func(b *testing.B, keyspace int) {
		tbl, err := NewTable[blktrace.Extent](TableConfig{Capacity1: 4096, Capacity2: 4096}, nil)
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]blktrace.Extent, keyspace)
		for i := range keys {
			keys[i] = blktrace.Extent{Block: uint64(i) * 8, Len: 8}
		}
		for i := 0; i < 4*len(keys); i++ { // warm: fill arena, settle map
			tbl.Touch(keys[i%len(keys)])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Touch(keys[i%len(keys)])
		}
	}
	// churn: keyspace 3x capacity — every touch misses, evicts, and
	// recycles a slot through the free list.
	b.Run("churn", func(b *testing.B) { run(b, 3*8192) })
	// hit: keyspace within capacity — every touch is a hit moving an
	// entry to its tier's MRU position.
	b.Run("hit", func(b *testing.B) { run(b, 4096) })
}

func BenchmarkAnalyzerProcess(b *testing.B) {
	a, err := NewAnalyzer(Config{ItemCapacity: 4096, PairCapacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	txs := guardTransactions(2048, 8192, 1)
	for i := 0; i < 4*len(txs); i++ { // warm both tables and the link slab
		a.Process(txs[i%len(txs)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Process(txs[i%len(txs)])
	}
}
