package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"daccor/internal/blktrace"
)

// randomSnapshot builds a sorted snapshot over a small key universe so
// successive snapshots overlap (the interesting diff case).
func randomSnapshot(rng *rand.Rand, nItems, nPairs int) Snapshot {
	var s Snapshot
	items := make(map[blktrace.Extent]struct{})
	for len(s.Items) < nItems {
		e := blktrace.Extent{Block: uint64(rng.Intn(64) * 8), Len: uint32(1 + rng.Intn(4))}
		if _, ok := items[e]; ok {
			continue
		}
		items[e] = struct{}{}
		tier := Tier1
		if rng.Intn(2) == 0 {
			tier = Tier2
		}
		s.Items = append(s.Items, ItemCount{Extent: e, Count: uint32(1 + rng.Intn(100)), Tier: tier})
	}
	pairs := make(map[blktrace.Pair]struct{})
	for len(s.Pairs) < nPairs {
		a := blktrace.Extent{Block: uint64(rng.Intn(64) * 8), Len: uint32(1 + rng.Intn(4))}
		b := blktrace.Extent{Block: uint64(rng.Intn(64) * 8), Len: uint32(1 + rng.Intn(4))}
		if a == b {
			continue
		}
		p := blktrace.MakePair(a, b)
		if _, ok := pairs[p]; ok {
			continue
		}
		pairs[p] = struct{}{}
		tier := Tier1
		if rng.Intn(2) == 0 {
			tier = Tier2
		}
		s.Pairs = append(s.Pairs, PairCount{Pair: p, Count: uint32(1 + rng.Intn(100)), Tier: tier})
	}
	s.sort()
	return s
}

func TestDiffApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		old := randomSnapshot(rng, rng.Intn(30), rng.Intn(30))
		new := randomSnapshot(rng, rng.Intn(30), rng.Intn(30))
		d := DiffSnapshots(old, new)
		got, err := d.Apply(old)
		if err != nil {
			t.Fatalf("iter %d: Apply: %v", i, err)
		}
		if !reflect.DeepEqual(got, new) {
			t.Fatalf("iter %d: Apply(Diff(old,new), old) != new\ngot  %+v\nwant %+v", i, got, new)
		}
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSnapshot(rng, 20, 20)
	d := DiffSnapshots(s, s)
	if !d.Empty() {
		t.Fatalf("diff of identical snapshots not empty: %+v", d)
	}
}

func TestApplyConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomSnapshot(rng, 10, 10)
	d := SnapshotDelta{DeletePairs: []blktrace.Pair{blktrace.MakePair(
		blktrace.Extent{Block: 1 << 40, Len: 1}, blktrace.Extent{Block: 1<<40 + 8, Len: 1})}}
	if _, err := d.Apply(base); !errors.Is(err, ErrDeltaConflict) {
		t.Fatalf("delete of absent key: got %v, want ErrDeltaConflict", err)
	}
	d = SnapshotDelta{DeleteItems: []blktrace.Extent{{Block: 1 << 40, Len: 1}}}
	if _, err := d.Apply(base); !errors.Is(err, ErrDeltaConflict) {
		t.Fatalf("delete of absent item: got %v, want ErrDeltaConflict", err)
	}
}

func TestDeltaWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		old := randomSnapshot(rng, rng.Intn(20), rng.Intn(20))
		new := randomSnapshot(rng, rng.Intn(20), rng.Intn(20))
		d := DiffSnapshots(old, new)
		var buf bytes.Buffer
		n, err := EncodeDelta(&buf, d)
		if err != nil {
			t.Fatalf("EncodeDelta: %v", err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("EncodeDelta returned %d, wrote %d", n, buf.Len())
		}
		got, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("DecodeDelta: %v", err)
		}
		// Decoded empty sections are non-nil empty slices; normalize for
		// the comparison.
		if !equalDelta(got, d) {
			t.Fatalf("delta roundtrip mismatch\ngot  %+v\nwant %+v", got, d)
		}
	}
}

func equalDelta(a, b SnapshotDelta) bool {
	if len(a.UpsertItems) != len(b.UpsertItems) || len(a.UpsertPairs) != len(b.UpsertPairs) ||
		len(a.DeleteItems) != len(b.DeleteItems) || len(a.DeletePairs) != len(b.DeletePairs) {
		return false
	}
	for i := range a.UpsertItems {
		if a.UpsertItems[i] != b.UpsertItems[i] {
			return false
		}
	}
	for i := range a.UpsertPairs {
		if a.UpsertPairs[i] != b.UpsertPairs[i] {
			return false
		}
	}
	for i := range a.DeleteItems {
		if a.DeleteItems[i] != b.DeleteItems[i] {
			return false
		}
	}
	for i := range a.DeletePairs {
		if a.DeletePairs[i] != b.DeletePairs[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRecordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randomSnapshot(rng, 25, 25)
	var buf bytes.Buffer
	if _, err := EncodeSnapshotRecords(&buf, s); err != nil {
		t.Fatalf("EncodeSnapshotRecords: %v", err)
	}
	got, err := DecodeSnapshotRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeSnapshotRecords: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("snapshot records roundtrip mismatch\ngot  %+v\nwant %+v", got, s)
	}
}

func TestDecodeDeltaRejectsCorruption(t *testing.T) {
	e1 := blktrace.Extent{Block: 8, Len: 1}
	e2 := blktrace.Extent{Block: 16, Len: 1}
	d := SnapshotDelta{
		UpsertItems: []ItemCount{{Extent: e1, Count: 3, Tier: Tier1}},
		UpsertPairs: []PairCount{{Pair: blktrace.MakePair(e1, e2), Count: 2, Tier: Tier2}},
		DeleteItems: []blktrace.Extent{e2},
	}
	var buf bytes.Buffer
	if _, err := EncodeDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Truncation at every prefix must error, never panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeDelta(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	// Duplicate records: upsert the same item twice.
	dup := SnapshotDelta{UpsertItems: []ItemCount{
		{Extent: e1, Count: 3, Tier: Tier1},
		{Extent: e1, Count: 4, Tier: Tier1},
	}}
	buf.Reset()
	if _, err := EncodeDelta(&buf, dup); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("duplicate upsert: got %v, want ErrBadDelta", err)
	}

	// A key both upserted and deleted is contradictory.
	contra := SnapshotDelta{
		UpsertItems: []ItemCount{{Extent: e1, Count: 3, Tier: Tier1}},
		DeleteItems: []blktrace.Extent{e1},
	}
	buf.Reset()
	if _, err := EncodeDelta(&buf, contra); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("upsert+delete of same key: got %v, want ErrBadDelta", err)
	}

	// Hostile counts must not drive a huge allocation: a header claiming
	// maxDeltaRecords entries with no payload errors on the first read.
	hostile := make([]byte, 16)
	for i := 0; i < 16; i += 4 {
		hostile[i] = 0xFF
		hostile[i+1] = 0xFF
		hostile[i+2] = 0xFF
	}
	if _, err := DecodeDelta(bytes.NewReader(hostile)); err == nil {
		t.Fatal("hostile counts decoded successfully")
	}
}
