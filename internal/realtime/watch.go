package realtime

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"daccor/internal/engine"
	"daccor/internal/obs"
)

// The watch routes are the push half of the v1 API. The query routes
// let a consumer *validate* cheaply (epoch-keyed ETags, 304s); watch
// lets it *subscribe*: one open request, and every synopsis epoch
// advance is delivered as it happens, coalescing naturally under rapid
// ingest because the handler always reads the freshest state after a
// wakeup. Two wire forms share the same cursor:
//
//   - SSE (default): `id:` carries the cursor, `event: rules` carries
//     the state, `event: end` terminates the stream when the watched
//     state can never advance again. Reconnecting with Last-Event-ID
//     set to the last seen cursor resumes without duplicates.
//   - Long poll (?wait=): a conditional GET that blocks while
//     If-None-Match still matches, answering 304 only when the wait
//     elapses with no advance.
//
// The cursor is the device's epoch ("17"), or for the fleet the
// epoch-sum and device count ("103.2") — the same quantities that key
// the query routes' ETags.

// MaxWatchWait bounds the ?wait= long-poll hold; watchKeepalive paces
// SSE comment lines so idle streams keep intermediaries from timing
// the connection out. MaxWatchInterval bounds ?interval=, the
// SSE delivery pacing knob.
const (
	MaxWatchWait     = 60 * time.Second
	watchKeepalive   = 25 * time.Second
	MaxWatchInterval = 10 * time.Second
)

// watchWriteTimeout bounds every SSE write. A consumer that stops
// reading fills its TCP window and would otherwise park the handler
// goroutine in Write forever — holding the watcher slot, its buffers,
// and a connection nobody is draining. Past the deadline the stream is
// dropped: a reader that slow has effectively disconnected, and SSE
// reconnection (Last-Event-ID) makes the drop cheap to recover from.
// A variable so the slow-consumer test does not take ten seconds.
var watchWriteTimeout = 10 * time.Second

// Watch metric families recorded in the engine's registry.
const (
	MetricWatchWatchers  = "daccor_watch_watchers"
	MetricWatchEvents    = "daccor_watch_events_total"
	MetricWatchFanout    = "daccor_watch_fanout_seconds"
	MetricWatchCoalesced = "daccor_watch_coalesced_epochs_total"
	MetricWatchTimeouts  = "daccor_watch_longpoll_timeouts_total"
	MetricWatchSlowDrops = "daccor_watch_slow_drops_total"
)

// watchMetrics holds the watch instruments, resolved once per handler
// so the event loops never touch the registry's lookup path.
type watchMetrics struct {
	watchers   *obs.Gauge
	sseEvents  *obs.Counter
	pollEvents *obs.Counter
	fanout     *obs.Histogram
	coalesced  *obs.Counter
	timeouts   *obs.Counter
	slowDrops  *obs.Counter
}

func newWatchMetrics(reg *obs.Registry) *watchMetrics {
	return &watchMetrics{
		watchers: reg.Gauge(MetricWatchWatchers,
			"Currently connected SSE watch streams."),
		sseEvents: reg.Counter(MetricWatchEvents,
			"Watch state deliveries, by transport mode.", obs.L("mode", "sse")),
		pollEvents: reg.Counter(MetricWatchEvents,
			"Watch state deliveries, by transport mode.", obs.L("mode", "poll")),
		fanout: reg.Histogram(MetricWatchFanout,
			"Latency from epoch advance to watcher wakeup, in seconds.", obs.LatencyBuckets()),
		coalesced: reg.Counter(MetricWatchCoalesced,
			"Epoch advances skipped because a watcher coalesced them into one delivery."),
		timeouts: reg.Counter(MetricWatchTimeouts,
			"Long-poll watch requests that timed out with 304 (no advance)."),
		slowDrops: reg.Counter(MetricWatchSlowDrops,
			"SSE watch streams dropped because the client stopped reading."),
	}
}

// watchCursor is a watch position: a device epoch, or the fleet's
// (epoch-sum, device-count) pair.
type watchCursor struct {
	epoch   uint64
	devices int
}

// watchTarget is what one watch request observes: a single device, or
// the merged fleet when device is empty.
type watchTarget struct {
	e      *engine.Engine
	device string
}

func (t watchTarget) name() string {
	if t.device != "" {
		return t.device
	}
	return "fleet"
}

// format renders a cursor as the wire token used for SSE event IDs and
// inside long-poll ETags.
func (t watchTarget) format(c watchCursor) string {
	if t.device != "" {
		return strconv.FormatUint(c.epoch, 10)
	}
	return fmt.Sprintf("%d.%d", c.epoch, c.devices)
}

// parse decodes a wire token (e.g. a Last-Event-ID header). Unparsable
// tokens report false and are treated as no cursor at all — a client
// with a garbled cursor just gets the current state delivered.
func (t watchTarget) parse(s string) (watchCursor, bool) {
	if s == "" {
		return watchCursor{}, false
	}
	if t.device != "" {
		ep, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return watchCursor{}, false
		}
		return watchCursor{epoch: ep}, true
	}
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return watchCursor{}, false
	}
	sum, err1 := strconv.ParseUint(s[:i], 10, 64)
	n, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || n < 0 {
		return watchCursor{}, false
	}
	return watchCursor{epoch: sum, devices: n}, true
}

// state reads the target's current cursor and delta body. The cursor
// is read before the snapshot/rules, so it can only under-claim
// freshness — a watcher acting on the body never misses a newer epoch,
// it is just woken once more for it.
func (t watchTarget) state(support uint32, top int, conf float64) (watchCursor, map[string]any, error) {
	if t.device != "" {
		epoch, err := t.e.Epoch(t.device)
		if err != nil {
			return watchCursor{}, nil, err
		}
		snap, err := t.e.Snapshot(t.device, support)
		if err != nil {
			return watchCursor{}, nil, err
		}
		rules, err := deviceTopRules(t.e, t.device, support, conf, top)
		if err != nil {
			return watchCursor{}, nil, err
		}
		cur := watchCursor{epoch: epoch}
		return cur, map[string]any{
			"epoch":      t.format(cur),
			"device":     t.device,
			"totalPairs": len(snap.Pairs),
			"pairs":      snap.TopPairs(top),
			"rules":      rules,
		}, nil
	}
	sum, n := t.e.MergedEpoch()
	snap, err := t.e.MergedSnapshot(support)
	if err != nil {
		return watchCursor{}, nil, err
	}
	rules, err := mergedOrSingleRules(t.e, support, conf, top)
	if err != nil {
		return watchCursor{}, nil, err
	}
	cur := watchCursor{epoch: sum, devices: n}
	return cur, map[string]any{
		"epoch":      t.format(cur),
		"devices":    t.e.Devices(),
		"totalPairs": len(snap.Pairs),
		"pairs":      snap.TopPairs(top),
		"rules":      rules,
	}, nil
}

// wait blocks until the target's cursor differs from since; see
// Engine.WaitEpoch / Engine.WaitMergedEpoch for the terminal and
// context semantics.
func (t watchTarget) wait(ctx context.Context, since watchCursor) (watchCursor, error) {
	if t.device != "" {
		ep, err := t.e.WaitEpoch(ctx, t.device, since.epoch)
		return watchCursor{epoch: ep}, err
	}
	sum, n, err := t.e.WaitMergedEpoch(ctx, since.epoch, since.devices)
	return watchCursor{epoch: sum, devices: n}, err
}

// observeFanout records how long after the epoch advance this watcher
// actually woke — the push path's delivery latency.
func (t watchTarget) observeFanout(wm *watchMetrics) {
	var at time.Time
	if t.device != "" {
		at, _ = t.e.EpochAdvanceTime(t.device)
	} else {
		at = t.e.MergedEpochAdvanceTime()
	}
	if at.IsZero() {
		return
	}
	if d := time.Since(at); d >= 0 {
		wm.fanout.Observe(d.Seconds())
	}
}

// skipped estimates the epoch advances coalesced between two delivered
// cursors: a watcher that wakes to epoch 9 after delivering epoch 5
// skipped three intermediate states.
func skipped(prev, next watchCursor) uint64 {
	if next.epoch > prev.epoch+1 {
		return next.epoch - prev.epoch - 1
	}
	return 0
}

// waitParam parses ?wait= (absent means SSE mode): a positive Go
// duration string, clamped to MaxWatchWait.
func waitParam(r *http.Request) (time.Duration, bool, error) {
	v := r.URL.Query().Get("wait")
	if v == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, false, fmt.Errorf("wait must be a positive Go duration (e.g. %q), got %q", "30s", v)
	}
	if d > MaxWatchWait {
		d = MaxWatchWait
	}
	return d, true, nil
}

// intervalParam parses ?interval=, the SSE delivery pacing knob: the
// minimum spacing between deliveries on one stream, clamped to
// MaxWatchInterval. Epoch advances inside the spacing coalesce into
// the next delivery — the stream's contract (freshest state, no
// missed terminal events) is unchanged, only its cadence. Without it
// a fleet watcher makes the server recompute the merged state on
// every advance of any device, which at fleet scale is a tight
// recompute loop; with it the server does that work at most once per
// interval per stream.
func intervalParam(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("interval")
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("interval must be a non-negative Go duration (e.g. %q), got %q", "250ms", v)
	}
	if d > MaxWatchInterval {
		d = MaxWatchInterval
	}
	return d, nil
}

// serveWatch is the shared body of GET /v1/watch and
// GET /v1/devices/{id}/watch.
func serveWatch(e *engine.Engine, wm *watchMetrics, device string, w http.ResponseWriter, r *http.Request) *apiError {
	support, top, conf, err := ruleParams(r)
	if err != nil {
		return badRequest(err)
	}
	wait, hasWait, err := waitParam(r)
	if err != nil {
		return badRequest(err)
	}
	interval, err := intervalParam(r)
	if err != nil {
		return badRequest(err)
	}
	t := watchTarget{e: e, device: device}
	if hasWait {
		return t.longPoll(wm, w, r, support, top, conf, wait)
	}
	return t.stream(wm, w, r, support, top, conf, interval)
}

// longPoll is the no-SSE fallback: semantically a conditional GET on
// the watch state whose 304 is deferred until the wait elapses. A
// request without If-None-Match (or with a stale tag) answers
// immediately; a request holding the current tag blocks on the epoch
// notification — never an internal poll loop — until something
// changes.
func (t watchTarget) longPoll(wm *watchMetrics, w http.ResponseWriter, r *http.Request,
	support uint32, top int, conf float64, wait time.Duration) *apiError {
	tag := func(c watchCursor) string {
		return fmt.Sprintf(`"w-%s-%s-s%d-t%d-c%g"`, t.name(), t.format(c), support, top, conf)
	}
	cur, body, err := t.state(support, top, conf)
	if err != nil {
		return engineError(err)
	}
	if r.Header.Get("If-None-Match") == tag(cur) {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		next, werr := t.wait(ctx, cur)
		cancel()
		switch {
		case werr == nil:
			t.observeFanout(wm)
			wm.coalesced.Add(skipped(cur, next))
			cur, body, err = t.state(support, top, conf)
			if err != nil {
				return engineError(err)
			}
		case errors.Is(werr, context.DeadlineExceeded):
			wm.timeouts.Inc()
			w.Header().Set("ETag", tag(cur))
			w.WriteHeader(http.StatusNotModified)
			return nil
		case r.Context().Err() != nil:
			return nil // client went away mid-wait
		default:
			return engineError(werr)
		}
	}
	w.Header().Set("ETag", tag(cur))
	writeData(w, body)
	wm.pollEvents.Inc()
	return nil
}

// stream serves one SSE watch until the client disconnects or the
// watched state becomes terminal.
func (t watchTarget) stream(wm *watchMetrics, w http.ResponseWriter, r *http.Request,
	support uint32, top int, conf float64, interval time.Duration) *apiError {
	// Resolve the initial state before committing to the stream, so an
	// unknown device or stopped engine still gets a proper enveloped
	// error instead of a broken event stream.
	cur, body, err := t.state(support, top, conf)
	if err != nil {
		return engineError(err)
	}
	rc := http.NewResponseController(w)
	// push writes one SSE chunk under the slow-consumer deadline: each
	// write gets a fresh watchWriteTimeout, and a write (or flush) that
	// cannot complete within it ends the stream instead of parking this
	// goroutine on a full TCP window.
	push := func(write func() error) error {
		_ = rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
		err := write()
		if err == nil {
			err = rc.Flush()
		}
		if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			wm.slowDrops.Inc()
		}
		return err
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: when a resuming client's first delivery is
	// suppressed, nothing else would push them out until the first
	// keepalive, leaving the client blocked on connection setup.
	if push(func() error { return nil }) != nil {
		return nil
	}
	wm.watchers.Add(1)
	defer wm.watchers.Add(-1)

	prev := cur
	deliver := true
	if last, ok := t.parse(r.Header.Get("Last-Event-ID")); ok && last == cur {
		// The reconnecting client already holds the current state; the
		// first delivery is the next advance. A stale or garbled cursor
		// falls through and gets the current state immediately.
		deliver = false
	}
	for {
		if deliver {
			if push(func() error { return writeSSEEvent(w, t.format(cur), "rules", body) }) != nil {
				return nil // client went away or stopped reading
			}
			wm.sseEvents.Inc()
			wm.coalesced.Add(skipped(prev, cur))
			prev = cur
			if interval > 0 {
				// Pace the stream: advances landing in this window
				// coalesce into the next delivery. Terminal wakes are
				// not lost — the wait below returns them as soon as
				// the window closes.
				select {
				case <-r.Context().Done():
					return nil
				case <-time.After(interval):
				}
			}
		}
		kctx, cancel := context.WithTimeout(r.Context(), watchKeepalive)
		_, werr := t.wait(kctx, prev)
		cancel()
		switch {
		case werr == nil:
			t.observeFanout(wm)
			cur, body, err = t.state(support, top, conf)
			if err != nil {
				t.endStream(w, rc, err)
				return nil
			}
			deliver = cur != prev
		case errors.Is(werr, context.DeadlineExceeded):
			if push(func() error {
				_, err := io.WriteString(w, ": keepalive\n\n")
				return err
			}) != nil {
				return nil
			}
			deliver = false
		case r.Context().Err() != nil:
			return nil // client disconnected
		default:
			// Terminal: the engine stopped, or the device failed or was
			// unregistered. The watcher has already received the final
			// flushed state (the stop path bumps the epoch before the
			// terminal wake), so all that is left is to say why.
			t.endStream(w, rc, werr)
			return nil
		}
	}
}

// endStream emits the terminal SSE event. The reason mirrors the error
// codes of the query routes.
func (t watchTarget) endStream(w http.ResponseWriter, rc *http.ResponseController, err error) {
	reason := ErrCodeStopped
	if errors.Is(err, engine.ErrDeviceUnavailable) {
		reason = ErrCodeDeviceUnavailable
	}
	_ = rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
	_ = writeSSEEvent(w, "", "end", map[string]any{"reason": reason})
	_ = rc.Flush()
}

// writeSSEEvent writes one Server-Sent Event frame. The data is JSON,
// which never contains raw newlines, so a single data: line suffices.
func writeSSEEvent(w io.Writer, id, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if id != "" {
		fmt.Fprintf(&buf, "id: %s\n", id)
	}
	fmt.Fprintf(&buf, "event: %s\ndata: %s\n\n", event, b)
	_, err = w.Write(buf.Bytes())
	return err
}
