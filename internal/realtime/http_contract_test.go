package realtime

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// contractCase pins one route's status code and envelope. Every v1
// route — including watch in its long-poll form, ingest, and delete —
// must answer the {data, error} envelope with exactly one side set;
// unmatched paths (including the removed pre-v1 aliases) answer the
// mux's plain 404.
type contractCase struct {
	name       string
	method     string
	path       string
	body       string
	wantStatus int
	wantCode   string // expected error.code; "" means data must be set
	enveloped  bool   // false: plain (mux 404, prometheus text)
}

// checkContract issues one request and verifies the envelope
// invariant against the expectation.
func checkContract(t *testing.T, base string, c contractCase) {
	t.Helper()
	var body io.Reader
	if c.body != "" {
		body = strings.NewReader(c.body)
	}
	req, err := http.NewRequest(c.method, base+c.path, body)
	if err != nil {
		t.Fatal(err)
	}
	if c.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != c.wantStatus {
		t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, c.wantStatus, raw)
	}
	if !c.enveloped {
		return
	}
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("not an envelope: %v (body %s)", err, raw)
	}
	if c.wantCode == "" {
		if env.Error != nil {
			t.Errorf("unexpected error %+v", env.Error)
		}
		if len(env.Data) == 0 || string(env.Data) == "null" {
			t.Errorf("success with null data (body %s)", raw)
		}
		return
	}
	if string(env.Data) != "null" && len(env.Data) != 0 {
		t.Errorf("error response carries data %s", env.Data)
	}
	if env.Error == nil {
		t.Fatalf("error response with null error (body %s)", raw)
	}
	if env.Error.Code != c.wantCode {
		t.Errorf("error.code = %q, want %q", env.Error.Code, c.wantCode)
	}
	if env.Error.Message == "" {
		t.Error("error.message is empty")
	}
}

// TestV1EnvelopeContract runs the full route table against a live
// engine: every success, bad-request, and unknown-device answer in
// one place. Order matters only for the final DELETE, which mutates
// the engine.
func TestV1EnvelopeContract(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	ingest := `{"events":[{"time":999000000000,"op":"read","block":1,"len":1}]}`
	cases := []contractCase{
		// Success paths.
		{"stats", "GET", "/v1/stats", "", 200, "", true},
		{"devices", "GET", "/v1/devices", "", 200, "", true},
		{"device snapshot", "GET", "/v1/devices/vol0/snapshot?support=3", "", 200, "", true},
		{"device rules", "GET", "/v1/devices/vol0/rules?support=3&confidence=0.5", "", 200, "", true},
		{"device watch poll", "GET", "/v1/devices/vol0/watch?wait=50ms", "", 200, "", true},
		{"fleet snapshot", "GET", "/v1/snapshot", "", 200, "", true},
		{"fleet rules", "GET", "/v1/rules", "", 200, "", true},
		{"fleet watch poll", "GET", "/v1/watch?wait=50ms", "", 200, "", true},
		{"ingest", "POST", "/v1/devices/vol0/events", ingest, 200, "", true},
		{"healthz", "GET", "/v1/healthz", "", 200, "", true},
		{"readyz", "GET", "/v1/readyz", "", 200, "", true},

		// Bad parameters and bodies: uniformly 400 bad_request.
		{"bad support", "GET", "/v1/snapshot?support=x", "", 400, ErrCodeBadRequest, true},
		{"bad top", "GET", "/v1/devices/vol0/snapshot?top=x", "", 400, ErrCodeBadRequest, true},
		{"bad confidence", "GET", "/v1/rules?confidence=2", "", 400, ErrCodeBadRequest, true},
		{"bad wait fleet", "GET", "/v1/watch?wait=nope", "", 400, ErrCodeBadRequest, true},
		{"bad wait device", "GET", "/v1/devices/vol0/watch?wait=-1s", "", 400, ErrCodeBadRequest, true},
		{"bad watch params", "GET", "/v1/watch?confidence=9&wait=50ms", "", 400, ErrCodeBadRequest, true},
		{"bad ingest body", "POST", "/v1/devices/vol0/events", `{"events":[{"op":"chmod"}]}`, 400, ErrCodeBadRequest, true},

		// Unknown device: uniformly 404 unknown_device.
		{"unknown snapshot", "GET", "/v1/devices/nope/snapshot", "", 404, ErrCodeUnknownDevice, true},
		{"unknown rules", "GET", "/v1/devices/nope/rules", "", 404, ErrCodeUnknownDevice, true},
		{"unknown watch", "GET", "/v1/devices/nope/watch?wait=50ms", "", 404, ErrCodeUnknownDevice, true},
		{"unknown ingest", "POST", "/v1/devices/nope/events", ingest, 404, ErrCodeUnknownDevice, true},
		{"unknown delete", "DELETE", "/v1/devices/nope", "", 404, ErrCodeUnknownDevice, true},

		// Outside the envelope: prometheus text and unmatched paths,
		// including the removed pre-v1 aliases.
		{"metrics", "GET", "/v1/metrics", "", 200, "", false},
		{"unmatched", "GET", "/v1/nope", "", 404, "", false},
		{"alias stats", "GET", "/stats", "", 404, "", false},
		{"alias snapshot", "GET", "/snapshot", "", 404, "", false},
		{"alias rules", "GET", "/rules", "", 404, "", false},

		// Last: unregister mutates the fleet.
		{"delete device", "DELETE", "/v1/devices/vol1", "", 200, "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkContract(t, srv.URL, c) })
	}
}

// TestV1EnvelopeContractStopped pins the post-stop answers: every
// engine-backed route converges on 503 stopped; readiness reports
// not-ready as data, not as an error.
func TestV1EnvelopeContractStopped(t *testing.T) {
	e, srv := servedEngine(t)
	e.Stop()
	ingest := `{"events":[{"time":1,"op":"read","block":1,"len":1}]}`
	cases := []contractCase{
		{"stats", "GET", "/v1/stats", "", 503, ErrCodeStopped, true},
		{"devices", "GET", "/v1/devices", "", 503, ErrCodeStopped, true},
		{"device snapshot", "GET", "/v1/devices/vol0/snapshot", "", 503, ErrCodeStopped, true},
		{"device rules", "GET", "/v1/devices/vol0/rules", "", 503, ErrCodeStopped, true},
		{"device watch", "GET", "/v1/devices/vol0/watch?wait=1s", "", 503, ErrCodeStopped, true},
		{"fleet snapshot", "GET", "/v1/snapshot", "", 503, ErrCodeStopped, true},
		{"fleet rules", "GET", "/v1/rules", "", 503, ErrCodeStopped, true},
		{"fleet watch", "GET", "/v1/watch?wait=1s", "", 503, ErrCodeStopped, true},
		{"ingest", "POST", "/v1/devices/vol0/events", ingest, 503, ErrCodeStopped, true},
		{"delete", "DELETE", "/v1/devices/vol0", "", 503, ErrCodeStopped, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkContract(t, srv.URL, c) })
	}
	// Readiness is a status report, not an error: 503 with data.
	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Data *struct {
			Ready bool `json:"ready"`
		} `json:"data"`
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Data == nil || env.Data.Ready {
		t.Errorf("post-stop readyz = %d %+v, want 503 with ready=false data", resp.StatusCode, env.Data)
	}
}
