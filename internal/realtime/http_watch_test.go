package realtime

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/engine"
)

// sseEvent is one decoded Server-Sent Event frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// sseStream reads an SSE response incrementally; frames arrive on
// events, which closes when the server ends the stream.
type sseStream struct {
	body   io.ReadCloser
	events chan sseEvent
}

// openSSE connects a watch stream and starts decoding frames.
func openSSE(t *testing.T, url, lastEventID string) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch connect: status %d, body %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	s := &sseStream{body: resp.Body, events: make(chan sseEvent, 256)}
	t.Cleanup(s.close)
	go s.read()
	return s
}

func (s *sseStream) read() {
	defer close(s.events)
	sc := bufio.NewScanner(s.body)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.event != "" {
				s.events <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		}
	}
}

func (s *sseStream) close() { s.body.Close() }

// next returns the following frame, failing the test on timeout or a
// server-closed stream.
func (s *sseStream) next(t *testing.T, timeout time.Duration) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return ev
	case <-time.After(timeout):
		t.Fatal("timed out waiting for SSE event")
	}
	return sseEvent{}
}

// watchBody is the wire shape of one watch state delivery.
type watchBody struct {
	Epoch      string `json:"epoch"`
	Device     string `json:"device"`
	TotalPairs int    `json:"totalPairs"`
	Rules      []struct {
		Confidence float64
	} `json:"rules"`
}

func decodeWatchBody(t *testing.T, ev sseEvent) watchBody {
	t.Helper()
	if ev.event != "rules" {
		t.Fatalf("event = %q, want rules (data %s)", ev.event, ev.data)
	}
	var b watchBody
	if err := json.Unmarshal([]byte(ev.data), &b); err != nil {
		t.Fatalf("decode watch body %q: %v", ev.data, err)
	}
	if b.Epoch != ev.id {
		t.Errorf("body epoch %q != event id %q", b.Epoch, ev.id)
	}
	return b
}

// advanceEpoch feeds one correlated pair at a fresh event time, far
// enough from earlier traffic to flush the open transaction window.
func advanceEpoch(t *testing.T, e *engine.Engine, id string, base int64) {
	t.Helper()
	if err := e.SubmitBatch(id, []blktrace.Event{
		{Time: base, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 10, Len: 1}},
		{Time: base + 1000, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 20, Len: 1}},
	}); err != nil {
		t.Fatal(err)
	}
}

func epochNum(t *testing.T, id string) uint64 {
	t.Helper()
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		t.Fatalf("cursor %q is not a device epoch: %v", id, err)
	}
	return n
}

// TestWatchSSEPush pins the PR's acceptance bar: an epoch advance is
// delivered to a connected SSE watcher as a push, with zero 304
// revalidations anywhere — the watch path never falls back to
// conditional-GET polling.
func TestWatchSSEPush(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	s := openSSE(t, srv.URL+"/v1/devices/vol0/watch?support=3&confidence=0.5&top=10", "")

	first := decodeWatchBody(t, s.next(t, 5*time.Second))
	if first.Device != "vol0" || first.TotalPairs != 1 {
		t.Fatalf("initial state = %+v", first)
	}
	if len(first.Rules) == 0 {
		t.Fatalf("initial state has no rules: %+v", first)
	}

	advanceEpoch(t, e, "vol0", 100*int64(time.Second))
	second := decodeWatchBody(t, s.next(t, 5*time.Second))
	if epochNum(t, second.Epoch) <= epochNum(t, first.Epoch) {
		t.Errorf("epoch did not advance: %s -> %s", first.Epoch, second.Epoch)
	}

	// The push loop must not have minted a single 304 anywhere.
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `code="304"`) {
		t.Errorf("watch delivery produced 304 revalidations:\n%s", sb.String())
	}
	if got := e.Metrics().Gauge(MetricWatchWatchers, "").Value(); got != 1 {
		t.Errorf("watchers gauge = %g, want 1", got)
	}
}

// TestWatchLongPoll covers the ?wait= fallback: an immediate answer
// without a tag, a deferred 304 when nothing changes, and a wakeup
// when the epoch advances mid-wait.
func TestWatchLongPoll(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	url := srv.URL + "/v1/watch?support=3&confidence=0.5&top=10&wait=30s"

	get := func(etag string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	// No If-None-Match: answered immediately.
	resp, _ := get("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial poll status = %d", resp.StatusCode)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("initial poll has no ETag")
	}

	// Current tag, nothing changes: blocks for the wait, then 304.
	shortURL := srv.URL + "/v1/watch?support=3&confidence=0.5&top=10&wait=100ms"
	req, _ := http.NewRequest(http.MethodGet, shortURL, nil)
	req.Header.Set("If-None-Match", tag)
	start := time.Now()
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged poll status = %d, want 304", resp2.StatusCode)
	}
	if held := time.Since(start); held < 100*time.Millisecond {
		t.Errorf("long poll returned after %v, want >= 100ms hold", held)
	}
	if got := e.Metrics().Counter(MetricWatchTimeouts, "").Value(); got == 0 {
		t.Error("long-poll timeout not recorded")
	}

	// Current tag, epoch advances mid-wait: woken with fresh state.
	done := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("If-None-Match", tag)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			done <- resp
		}
	}()
	time.Sleep(50 * time.Millisecond)
	advanceEpoch(t, e, "vol0", 200*int64(time.Second))
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("woken poll status = %d", resp.StatusCode)
		}
		if newTag := resp.Header.Get("ETag"); newTag == tag || newTag == "" {
			t.Errorf("woken poll ETag = %q, want a fresh tag != %q", newTag, tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never woke on epoch advance")
	}
}

// TestWatchResume covers Last-Event-ID semantics: a client holding the
// current cursor is not re-sent the state it already has, while a
// stale or garbled cursor gets the current state immediately.
func TestWatchResume(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	url := srv.URL + "/v1/devices/vol0/watch?support=3&confidence=0.5&top=10"

	s1 := openSSE(t, url, "")
	first := decodeWatchBody(t, s1.next(t, 5*time.Second))
	s1.close()

	// Resume holding the current cursor: no duplicate of the state the
	// client already has — the first delivery is the next advance.
	s2 := openSSE(t, url, first.Epoch)
	advanceEpoch(t, e, "vol0", 300*int64(time.Second))
	resumed := decodeWatchBody(t, s2.next(t, 5*time.Second))
	if epochNum(t, resumed.Epoch) <= epochNum(t, first.Epoch) {
		t.Errorf("resume delivered a duplicate: cursor %s after %s", resumed.Epoch, first.Epoch)
	}
	s2.close()

	// A stale cursor gets the current state immediately.
	s3 := openSSE(t, url, "0")
	stale := decodeWatchBody(t, s3.next(t, 5*time.Second))
	if epochNum(t, stale.Epoch) < epochNum(t, resumed.Epoch) {
		t.Errorf("stale resume cursor %s, want >= %s", stale.Epoch, resumed.Epoch)
	}
	s3.close()

	// A garbled cursor is treated as no cursor at all.
	s4 := openSSE(t, url, "not-a-cursor")
	decodeWatchBody(t, s4.next(t, 5*time.Second))
}

// TestWatchCoalescing drives rapid ingest against one watcher and
// checks delivered cursors are strictly increasing — intermediate
// epochs are coalesced into fresh-state deliveries, never replayed.
func TestWatchCoalescing(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	s := openSSE(t, srv.URL+"/v1/devices/vol0/watch?support=3&confidence=0.5&top=10", "")
	first := decodeWatchBody(t, s.next(t, 5*time.Second))

	const rounds = 40
	for i := 0; i < rounds; i++ {
		advanceEpoch(t, e, "vol0", (400+int64(i))*int64(time.Second))
	}

	// Drain deliveries until the cursor stops moving; every delivered
	// cursor must be strictly newer than the last.
	last := epochNum(t, first.Epoch)
	deliveries := 0
	for {
		select {
		case ev, ok := <-s.events:
			if !ok {
				t.Fatal("stream closed mid-churn")
			}
			body := decodeWatchBody(t, ev)
			cur := epochNum(t, body.Epoch)
			if cur <= last {
				t.Fatalf("cursor went backwards or repeated: %d after %d", cur, last)
			}
			last = cur
			deliveries++
		case <-time.After(2 * time.Second):
			if deliveries == 0 {
				t.Fatal("no deliveries for 40 epoch advances")
			}
			if last == epochNum(t, first.Epoch) {
				t.Fatal("cursor never advanced")
			}
			return
		}
	}
}

// TestWatchStoppedTerminal pins the terminal path: a connected watcher
// is woken on Stop and receives the end event with a machine-readable
// reason, and new watch connections answer the same typed 503 as the
// query routes.
func TestWatchStoppedTerminal(t *testing.T) {
	e, srv := servedEngine(t)
	s := openSSE(t, srv.URL+"/v1/devices/vol0/watch?support=3&confidence=0.5&top=10", "")
	decodeWatchBody(t, s.next(t, 5*time.Second))

	e.Stop()
	// Stop flushes open transactions, so a final rules delivery may
	// precede the end event; it must arrive promptly either way.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-s.events:
			if !ok {
				t.Fatal("stream closed without an end event")
			}
			if ev.event == "rules" {
				continue
			}
			if ev.event != "end" {
				t.Fatalf("unexpected event %q", ev.event)
			}
			var body struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(ev.data), &body); err != nil {
				t.Fatal(err)
			}
			if body.Reason != ErrCodeStopped {
				t.Errorf("end reason = %q, want %q", body.Reason, ErrCodeStopped)
			}
			goto stopped
		case <-deadline:
			t.Fatal("no end event after Stop")
		}
	}
stopped:
	// New connections get the typed stopped envelope, not a stream.
	for _, path := range []string{"/v1/devices/vol0/watch", "/v1/watch", "/v1/watch?wait=1s"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != ErrCodeStopped {
			t.Errorf("%s: post-stop watch = %d %+v, want 503 %s", path, resp.StatusCode, env.Error, ErrCodeStopped)
		}
	}
}

// TestWatchUnregisterTerminal checks a watcher of a device that is
// unregistered mid-stream receives the end event rather than hanging.
func TestWatchUnregisterTerminal(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	s := openSSE(t, srv.URL+"/v1/devices/vol1/watch?support=3&confidence=0.5&top=10", "")
	decodeWatchBody(t, s.next(t, 5*time.Second))

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/devices/vol1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}

	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-s.events:
			if !ok {
				t.Fatal("stream closed without an end event")
			}
			if ev.event == "end" {
				return
			}
		case <-deadline:
			t.Fatal("no end event after unregister")
		}
	}
}

// TestWatchConcurrentChurn races many watchers against batch ingest,
// an unregister, and engine stop. Run under -race, it pins the
// wakeup/fan-out path against data races; each device watcher also
// checks its cursors stay strictly monotone.
func TestWatchConcurrentChurn(t *testing.T) {
	e, srv := servedEngine(t)
	var wg sync.WaitGroup
	drain := func(path string, monotone bool) {
		defer wg.Done()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		var last uint64
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "id: ") || !monotone {
				continue
			}
			cur, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Errorf("bad cursor line %q: %v", line, err)
				return
			}
			if cur <= last && last != 0 {
				t.Errorf("cursor not monotone: %d after %d", cur, last)
			}
			last = cur
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go drain("/v1/devices/vol0/watch?support=3", true)
		go drain("/v1/watch?support=3", false) // fleet cursor may shrink on unregister
	}
	// Let the watchers connect, then churn.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 30; i++ {
		base := (500 + int64(i)) * int64(time.Second)
		advanceEpoch(t, e, "vol0", base)
		if i < 15 {
			advanceEpoch(t, e, "vol1", base)
		}
		if i == 15 {
			if err := e.Unregister("vol1"); err != nil {
				t.Error(err)
			}
		}
	}
	e.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watchers did not drain after Stop")
	}
}

// A paced stream (?interval=) still delivers every distinct state —
// advances landing inside the pacing window coalesce into the next
// delivery rather than being lost — and bad intervals are rejected.
func TestWatchDeliveryInterval(t *testing.T) {
	e, srv := servedEngine(t)
	url := srv.URL + "/v1/devices/vol0/watch?support=1&interval=100ms"
	s := openSSE(t, url, "")
	first := decodeWatchBody(t, s.next(t, 5*time.Second))

	// Two advances in quick succession inside the pacing window: the
	// stream must deliver a newer state (possibly coalescing the two
	// into one frame), not drop it.
	base := int64(100 * time.Second)
	advanceEpoch(t, e, "vol0", base)
	advanceEpoch(t, e, "vol0", base+int64(time.Second))
	got := decodeWatchBody(t, s.next(t, 5*time.Second))
	if epochNum(t, got.Epoch) <= epochNum(t, first.Epoch) {
		t.Fatalf("paced stream did not advance: %q -> %q", first.Epoch, got.Epoch)
	}

	for _, bad := range []string{"interval=-1s", "interval=soon"} {
		resp, err := http.Get(srv.URL + "/v1/devices/vol0/watch?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
