package realtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
	"daccor/internal/obs"
)

// TestChurnUnderLoadLeaksNothing is the tenant-churn leak property:
// Unregister racing a feeder's SubmitBatch, a blocked WaitEpoch caller,
// and a live /v1/watch stream must release everything the tenant owned.
// After many cycles with fresh device IDs the goroutine count and the
// metric-series cardinality are back at their post-warmup baselines,
// every watcher saw the terminal end event, and every epoch waiter was
// woken with an error instead of leaking.
func TestChurnUnderLoadLeaksNothing(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 256, PairCapacity: 256}),
		engine.WithMetrics(reg),
		engine.WithQueueSize(256),
		engine.WithBackpressure(engine.DropOldest),
		engine.WithDevices("stable"),
	)
	must(t, err)
	defer e.Stop()
	srv := httptest.NewServer(NewEngineHandler(e))
	defer srv.Close()

	// One full cycle materializes every lazily created resource (HTTP
	// route series, transport connections, shard scaffolding) before
	// the baselines are taken, so the assertion measures churn, not
	// first-use allocation.
	churnCycle(t, e, srv, "warm-0")
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	gorBase := settledGoroutines(runtime.NumGoroutine() + 1)
	seriesBase := reg.NumSeries()

	const cycles = 25
	for i := 0; i < cycles; i++ {
		churnCycle(t, e, srv, fmt.Sprintf("churn-%03d", i))
	}

	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	const slack = 4
	if got := settledGoroutines(gorBase + slack); got > gorBase+slack {
		t.Errorf("goroutines grew from %d to %d after %d churn cycles", gorBase, got, cycles)
	}
	if got := reg.NumSeries(); got > seriesBase {
		t.Errorf("metric series grew from %d to %d after %d churn cycles", seriesBase, got, cycles)
	}
	var buf strings.Builder
	must(t, reg.WritePrometheus(&buf))
	if strings.Contains(buf.String(), `device="churn-`) {
		t.Error("exposition still names a churned device after Unregister")
	}
	if got := e.Devices(); len(got) != 1 || got[0] != "stable" {
		t.Errorf("Devices() = %v, want only the stable device", got)
	}
}

// churnCycle registers id, races a feeder, a blocked epoch waiter, and
// an SSE watcher against its Unregister, and verifies each observer was
// released the way the protocol promises.
func churnCycle(t *testing.T, e *engine.Engine, srv *httptest.Server, id string) {
	t.Helper()
	must(t, e.Register(id))

	// Feeder: correlated pairs at advancing times until the device
	// disappears underneath it.
	feedDone := make(chan error, 1)
	go func() {
		a := blktrace.Extent{Block: 10, Len: 1}
		b := blktrace.Extent{Block: 20, Len: 1}
		for i := 0; ; i++ {
			base := int64(i) * int64(time.Second)
			err := e.SubmitBatch(id, []blktrace.Event{
				{Time: base, Op: blktrace.OpRead, Extent: a},
				{Time: base + 1000, Op: blktrace.OpRead, Extent: b},
			})
			if err != nil {
				feedDone <- err
				return
			}
		}
	}()

	// Epoch waiter following every advance; the loop can only end
	// because Unregister wakes it with a terminal error.
	waitDone := make(chan error, 1)
	go func() {
		var since uint64
		for {
			cur, err := e.WaitEpoch(context.Background(), id, since)
			if err != nil {
				waitDone <- err
				return
			}
			since = cur
		}
	}()

	s := openSSE(t, srv.URL+"/v1/devices/"+id+"/watch?support=1", "")
	if ev := s.next(t, 5*time.Second); ev.event != "rules" {
		t.Fatalf("first watch frame = %q, want rules", ev.event)
	}

	must(t, e.Unregister(id))

	// The stream must end with the terminal frame, then close.
	sawEnd := false
	for ev := range s.events {
		if ev.event != "end" {
			continue
		}
		sawEnd = true
		var body struct {
			Reason string `json:"reason"`
		}
		must(t, json.Unmarshal([]byte(ev.data), &body))
		if body.Reason != ErrCodeStopped {
			t.Errorf("end reason = %q, want %q", body.Reason, ErrCodeStopped)
		}
	}
	if !sawEnd {
		t.Error("watch stream closed without a terminal end event")
	}

	// The feeder's SubmitBatch fails with ErrUnknownDevice once the id
	// is gone; the waiter is woken with ErrStopped (or ErrUnknownDevice
	// if its re-wait lost the race with the map removal).
	for name, ch := range map[string]chan error{"feeder": feedDone, "epoch waiter": waitDone} {
		select {
		case err := <-ch:
			if !errors.Is(err, engine.ErrUnknownDevice) && !errors.Is(err, engine.ErrStopped) {
				t.Errorf("%s returned %v, want ErrUnknownDevice or ErrStopped", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s still blocked 5s after Unregister", name)
		}
	}
}

// settledGoroutines polls the goroutine count until it drops to target
// or a deadline passes, returning the last observation; exiting
// goroutines and connection teardown need a moment to unwind.
func settledGoroutines(target int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > target && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
