package realtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postEnvelope posts a JSON body to a v1 route and decodes the
// envelope, checking the same one-of-data-and-error invariant as
// getEnvelope.
func postEnvelope(t *testing.T, url, body string, data any) (int, *struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if resp.StatusCode == http.StatusOK {
		if env.Error != nil {
			t.Errorf("%s: 200 with error %+v", url, env.Error)
		}
		if data != nil {
			if err := json.Unmarshal(env.Data, data); err != nil {
				t.Fatalf("unmarshal %s data: %v", url, err)
			}
		}
	} else if env.Error == nil {
		t.Errorf("%s: status %d with null error", url, resp.StatusCode)
	}
	return resp.StatusCode, env.Error
}

func ingestBodyJSON(events ...string) string {
	return `{"events":[` + strings.Join(events, ",") + `]}`
}

func TestV1IngestEvents(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	before, err := e.DeviceStatsFor("vol0")
	if err != nil {
		t.Fatal(err)
	}
	// Two transactions of the correlated pair, continuing the timestamps
	// the served engine seeded.
	var evs []string
	base := int64(100 * time.Second)
	for i := 0; i < 2; i++ {
		ts := base + int64(i)*int64(time.Second)
		evs = append(evs,
			fmt.Sprintf(`{"time":%d,"pid":7,"op":"read","block":10,"len":1}`, ts),
			fmt.Sprintf(`{"time":%d,"pid":7,"op":"write","block":20,"len":1}`, ts+1000),
		)
	}
	var body struct {
		Device   string `json:"device"`
		Accepted int    `json:"accepted"`
	}
	code, _ := postEnvelope(t, srv.URL+"/v1/devices/vol0/events", ingestBodyJSON(evs...), &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Device != "vol0" || body.Accepted != 4 {
		t.Errorf("body = %+v, want device vol0 accepted 4", body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds, err := e.DeviceStatsFor("vol0")
		if err != nil {
			t.Fatal(err)
		}
		if ds.Monitor.Events >= before.Monitor.Events+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested events not processed: %d", ds.Monitor.Events)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestV1IngestErrors(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	url := srv.URL + "/v1/devices/vol0/events"
	cases := []struct {
		name, body, wantCode string
		wantStatus           int
		wantMsg              string
	}{
		{"malformed JSON", `{"events":`, ErrCodeBadRequest, http.StatusBadRequest, "invalid JSON"},
		{"unknown field", `{"evnts":[]}`, ErrCodeBadRequest, http.StatusBadRequest, "invalid JSON"},
		{"empty batch", `{"events":[]}`, ErrCodeBadRequest, http.StatusBadRequest, "non-empty"},
		{"bad op", ingestBodyJSON(`{"time":1,"op":"trim","block":1,"len":1}`),
			ErrCodeBadRequest, http.StatusBadRequest, "event 0"},
		{"invalid event", ingestBodyJSON(
			`{"time":1,"op":"read","block":1,"len":1}`,
			`{"time":2,"op":"read","block":1,"len":0}`),
			ErrCodeBadRequest, http.StatusBadRequest, "event 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, apiErr := postEnvelope(t, url, tc.body, nil)
			if code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", code, tc.wantStatus)
			}
			if apiErr == nil || apiErr.Code != tc.wantCode {
				t.Fatalf("error = %+v, want code %s", apiErr, tc.wantCode)
			}
			if !strings.Contains(apiErr.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", apiErr.Message, tc.wantMsg)
			}
		})
	}

	// Oversized batch rejected up front.
	var big bytes.Buffer
	big.WriteString(`{"events":[`)
	for i := 0; i <= MaxIngestBatch; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		fmt.Fprintf(&big, `{"time":%d,"op":"read","block":1,"len":1}`, i)
	}
	big.WriteString(`]}`)
	code, apiErr := postEnvelope(t, url, big.String(), nil)
	if code != http.StatusBadRequest || apiErr == nil || !strings.Contains(apiErr.Message, "batch too large") {
		t.Errorf("oversized batch: status %d error %+v", code, apiErr)
	}

	// Unknown device maps through the engine error path.
	code, apiErr = postEnvelope(t, srv.URL+"/v1/devices/nope/events",
		ingestBodyJSON(`{"time":1,"op":"read","block":1,"len":1}`), nil)
	if code != http.StatusNotFound || apiErr == nil || apiErr.Code != ErrCodeUnknownDevice {
		t.Errorf("unknown device: status %d error %+v", code, apiErr)
	}
}
