package realtime

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// fetchMetrics scrapes the metrics endpoint and returns the body.
func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestV1Metrics asserts the exposition covers all four instrumented
// layers — engine, monitor, analyzer, HTTP — with per-device labels
// and live values matching what the API itself reports.
func TestV1Metrics(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()

	// One API hit first so the HTTP middleware has something to report.
	if _, errInfo := getEnvelope(t, srv.URL+"/v1/stats", nil); errInfo != nil {
		t.Fatalf("stats error: %+v", errInfo)
	}

	body := fetchMetrics(t, srv.URL)
	// Engine layer: both devices were fed 16 events each.
	for _, want := range []string{
		`daccor_engine_events_submitted_total{device="vol0"} 16`,
		`daccor_engine_events_submitted_total{device="vol1"} 16`,
		`daccor_engine_events_dropped_total{device="vol0"} 0`,
		`daccor_engine_queue_depth{device="vol0"} 0`,
		`daccor_engine_queue_capacity{device="vol0"} 4096`,
		// Monitor layer: 16 events accepted; the 10 ms window means the
		// per-second pairs landed in separate transactions.
		`daccor_monitor_events_total{device="vol0"} 16`,
		`daccor_monitor_window_seconds{device="vol0"} 0.01`,
		// Analyzer layer: 7 closed transactions of 2 extents each.
		`daccor_analyzer_pair_touches_total{device="vol0"} 7`,
		// HTTP layer: the /v1/stats request above, labeled by pattern.
		`daccor_http_requests_total{code="200",route="GET /v1/stats"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(body, "# TYPE daccor_engine_submit_latency_seconds histogram") {
		t.Error("submit latency histogram family missing")
	}
	if !strings.Contains(body, `daccor_http_request_seconds_count{route="GET /v1/stats"} 1`) {
		t.Error("HTTP latency histogram missing the stats request")
	}

	// The first scrape itself is counted by the second one.
	body2 := fetchMetrics(t, srv.URL)
	if !strings.Contains(body2, `daccor_http_requests_total{code="200",route="GET /v1/metrics"} 1`) {
		t.Error("second scrape does not count the first")
	}
	// Two identical scrapes of a quiesced engine expose identical
	// engine/monitor/analyzer series (determinism guard).
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "daccor_engine_events_") ||
			strings.HasPrefix(line, "daccor_monitor_") ||
			strings.HasPrefix(line, "daccor_analyzer_") {
			if !strings.Contains(body2, line) {
				t.Errorf("series %q changed across scrapes of an idle engine", line)
			}
		}
	}
}

// TestMetricsMiddlewareStatuses checks the route/code labeling for
// error responses and unmatched paths.
func TestMetricsMiddlewareStatuses(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()

	if resp, err := http.Get(srv.URL + "/v1/devices/ghost/snapshot"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown device = %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/no/such/route"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	body := fetchMetrics(t, srv.URL)
	for _, want := range []string{
		`daccor_http_requests_total{code="404",route="GET /v1/devices/{id}/snapshot"} 1`,
		`daccor_http_requests_total{code="404",route="unmatched"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
