package realtime

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
	"daccor/pkg/client"
)

// restartEngine builds a one-device engine over the shared checkpoint
// directory; each call restores whatever the previous generation saved.
func restartEngine(t *testing.T, dir string) *engine.Engine {
	t.Helper()
	store, err := checkpoint.Open(checkpoint.Config{Dir: dir, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 256, PairCapacity: 256}),
		engine.WithCheckpoints(store, 50*time.Millisecond),
		engine.WithDevices("vol0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// serveOn serves the engine's API on addr ("" = any port), retrying the
// bind briefly: re-listening on the port a just-closed server held can
// race its release.
func serveOn(t *testing.T, e *engine.Engine, addr string) (*http.Server, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv := &http.Server{Handler: NewEngineHandler(e)}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// feedPair submits one occurrence of the learned (10, 20) pair at the
// given second-offset; each call also closes the window the previous
// call opened.
func feedPair(t *testing.T, e *engine.Engine, sec int) {
	t.Helper()
	base := int64(sec) * int64(time.Second)
	must(t, e.SubmitBatch("vol0", []blktrace.Event{
		{Time: base, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 10, Len: 1}},
		{Time: base + 1000, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 20, Len: 1}},
	}))
}

// TestClientWatchAcrossServerRestart is the resume property of the
// typed client: an abrupt server stop mid-stream (connections killed,
// engine stopped with a final checkpoint) is invisible to the watch
// consumer. The watcher re-dials with Last-Event-ID until the restarted
// server — same address, state restored from checkpoint — answers, the
// resumed deliveries carry the pre-restart counts forward (no cold
// start), epochs never repeat, and the cursor regresses at most once
// (the restarted engine's epoch counter starts over).
func TestClientWatchAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()

	e1 := restartEngine(t, dir)
	srv1, addr := serveOn(t, e1, "")
	for i := 0; i < 8; i++ {
		feedPair(t, e1, i)
	}

	cli := client.New("http://" + addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := cli.Watch(ctx, "vol0", client.Query{Support: 1, Top: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	recv := func(timeout time.Duration) client.WatchState {
		t.Helper()
		select {
		case st, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended early: %v", w.Err())
			}
			return st
		case <-time.After(timeout):
			t.Fatal("timed out waiting for watch delivery")
		}
		return client.WatchState{}
	}
	var states []client.WatchState
	pairCount := func(st client.WatchState) uint32 {
		t.Helper()
		for _, p := range st.Pairs {
			if p.Pair.A.Block == 10 && p.Pair.B.Block == 20 {
				return p.Count
			}
		}
		return 0
	}

	// Pre-restart: wait until the learned pair's closed occurrences are
	// visible, remembering the freshest state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := recv(5 * time.Second)
		states = append(states, st)
		if pairCount(st) >= 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair count stuck at %d before restart", pairCount(st))
		}
	}
	preCount := pairCount(states[len(states)-1])

	// Abrupt restart: kill the connections first so the client sees a
	// dropped stream (not a graceful terminal end), then stop the
	// engine, which flushes the final checkpoint.
	srv1.Close()
	e1.Stop()
	e2 := restartEngine(t, dir)
	defer e2.Stop()
	srv2, _ := serveOn(t, e2, addr)
	defer srv2.Close()

	// Resume: feed fresh occurrences until a post-restart delivery
	// lands. The reconnect window covers the client's capped backoff.
	var resumed client.WatchState
	got := false
	for i := 0; i < 100 && !got; i++ {
		feedPair(t, e2, 100+i)
		select {
		case st, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended during restart: %v", w.Err())
			}
			states = append(states, st)
			resumed = st
			got = true
		case <-time.After(200 * time.Millisecond):
		}
	}
	if !got {
		t.Fatal("no delivery after server restart")
	}
	if c := pairCount(resumed); c < preCount {
		t.Errorf("resumed count %d below pre-restart %d: checkpoint not restored", c, preCount)
	}

	// One more advance proves the resumed stream is live, not a replay.
	feedPair(t, e2, 300)
	st := recv(5 * time.Second)
	states = append(states, st)
	if c := pairCount(st); c < pairCount(resumed) {
		t.Errorf("post-resume count went backwards: %d after %d", c, pairCount(resumed))
	}

	// Cursor discipline across the whole run: every delivered epoch is
	// distinct (nothing delivered twice), and the numeric cursor
	// regresses at most once — the restarted engine's counter reset.
	seen := make(map[string]bool)
	resets := 0
	var prev uint64
	for i, s := range states {
		if seen[s.Epoch] {
			t.Errorf("epoch %q delivered twice", s.Epoch)
		}
		seen[s.Epoch] = true
		n, err := strconv.ParseUint(s.Epoch, 10, 64)
		if err != nil {
			t.Fatalf("epoch %q is not numeric: %v", s.Epoch, err)
		}
		if i > 0 && n <= prev {
			resets++
		}
		prev = n
	}
	if resets > 1 {
		t.Errorf("cursor regressed %d times, want at most 1 (the restart)", resets)
	}

	w.Close()
	if err := w.Err(); err != nil {
		t.Errorf("Err after Close = %v, want nil", err)
	}
	if _, ok := <-w.Events(); ok {
		t.Error("events channel still open after Close")
	}
}
