package realtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// healthResponse is the wire shape of /v1/healthz and /v1/readyz data.
type healthResponse struct {
	Status  string `json:"status"`
	Ready   *bool  `json:"ready"` // readyz only
	Devices []struct {
		ID                  string `json:"id"`
		State               string `json:"state"`
		Panics              uint64 `json:"panics"`
		Restarts            uint64 `json:"restarts"`
		ConsecutiveRestarts int    `json:"consecutiveRestarts"`
		CheckpointSeq       uint64 `json:"checkpointSeq"`
		Dropped             uint64 `json:"dropped"`
		Lag                 int    `json:"lag"`
	} `json:"devices"`
}

// getHealth fetches a health route, which (unlike the other v1 routes)
// carries a data envelope even on 503.
func getHealth(t *testing.T, url string) (int, healthResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Data  healthResponse `json:"data"`
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if env.Error != nil {
		t.Fatalf("%s: health route answered an error envelope: %+v", url, env.Error)
	}
	return resp.StatusCode, env.Data
}

func TestV1Healthz(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	code, h := getHealth(t, srv.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if len(h.Devices) != 2 {
		t.Fatalf("healthz lists %d devices, want 2", len(h.Devices))
	}
	for _, d := range h.Devices {
		if d.State != "healthy" || d.Panics != 0 || d.Restarts != 0 {
			t.Errorf("device %s: %+v, want healthy with zero fault counters", d.ID, d)
		}
	}
	if h.Devices[0].ID != "vol0" || h.Devices[1].ID != "vol1" {
		t.Errorf("devices not sorted: %s, %s", h.Devices[0].ID, h.Devices[1].ID)
	}
}

func TestV1ReadyzAcrossStop(t *testing.T) {
	e, srv := servedEngine(t)
	code, h := getHealth(t, srv.URL+"/v1/readyz")
	if code != http.StatusOK || h.Ready == nil || !*h.Ready {
		t.Fatalf("readyz before stop = %d %+v, want 200 ready", code, h)
	}
	e.Stop()
	code, h = getHealth(t, srv.URL+"/v1/readyz")
	if code != http.StatusServiceUnavailable || h.Ready == nil || *h.Ready {
		t.Errorf("readyz after stop = %d %+v, want 503 not ready", code, h)
	}
	// healthz is liveness, not readiness: a cleanly stopped engine's
	// devices were healthy when they exited, and the process is up.
	if code, _ := getHealth(t, srv.URL+"/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz after stop = %d, want 200", code)
	}
}

// faultyEngine builds an engine whose dev0 worker panics on every
// event and burns its restart budget almost immediately; "ok" devices
// are unaffected.
func faultyEngine(t *testing.T, devices ...string) *engine.Engine {
	t.Helper()
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		engine.WithDevices(devices...),
		engine.WithSupervisor(engine.SupervisorConfig{
			BackoffBase: time.Millisecond,
			BackoffCap:  2 * time.Millisecond,
			MaxRestarts: 1,
			Probation:   1 << 20,
		}),
		engine.WithProcessHook(func(device string, ev blktrace.Event) {
			if device == "dev0" {
				panic("injected fault")
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// failDevice feeds dev0 until the supervisor declares it Failed.
func failDevice(t *testing.T, e *engine.Engine) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = e.Submit("dev0", blktrace.Event{
			Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1},
		})
		for _, h := range e.Health() {
			if h.Device == "dev0" && h.State == engine.Failed {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dev0 never failed; health: %+v", e.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestV1HealthzWithFailedDevice(t *testing.T) {
	e := faultyEngine(t, "dev0", "ok1")
	srv := httptest.NewServer(NewEngineHandler(e))
	t.Cleanup(srv.Close)
	failDevice(t, e)

	// One of two devices failed: degraded but still 200 — the healthy
	// device is worth keeping in rotation.
	code, h := getHealth(t, srv.URL+"/v1/healthz")
	if code != http.StatusOK || h.Status != "degraded" {
		t.Errorf("healthz = %d %q, want 200 degraded", code, h.Status)
	}
	for _, d := range h.Devices {
		switch d.ID {
		case "dev0":
			if d.State != "failed" || d.Panics == 0 || d.Restarts == 0 {
				t.Errorf("dev0 detail = %+v, want failed with fault counters", d)
			}
		case "ok1":
			if d.State != "healthy" {
				t.Errorf("ok1 state = %q, want healthy", d.State)
			}
		}
	}
	if code, h := getHealth(t, srv.URL+"/v1/readyz"); code != http.StatusOK || *h.Ready != true {
		t.Errorf("readyz with one healthy device = %d, want 200", code)
	}

	// Queries against the failed device answer the typed code, fast.
	status, apiErr := getEnvelope(t, srv.URL+"/v1/devices/dev0/snapshot", nil)
	if status != http.StatusServiceUnavailable || apiErr == nil || apiErr.Code != ErrCodeDeviceUnavailable {
		t.Errorf("failed-device snapshot = %d %+v, want 503 %s", status, apiErr, ErrCodeDeviceUnavailable)
	}
	// Ingest to the failed device rejects with the same code.
	resp, err := http.Post(srv.URL+"/v1/devices/dev0/events", "application/json",
		strings.NewReader(`{"events":[{"time":1,"op":"read","block":1,"len":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != ErrCodeDeviceUnavailable {
		t.Errorf("failed-device ingest = %d %+v, want 503 %s", resp.StatusCode, env.Error, ErrCodeDeviceUnavailable)
	}

	// The healthy device keeps serving, and the merged view skips the
	// failed one instead of erroring.
	if status, _ := getEnvelope(t, srv.URL+"/v1/devices/ok1/snapshot", nil); status != http.StatusOK {
		t.Errorf("healthy-device snapshot = %d, want 200", status)
	}
	if status, _ := getEnvelope(t, srv.URL+"/v1/snapshot", nil); status != http.StatusOK {
		t.Errorf("merged snapshot with failed device = %d, want 200", status)
	}
}

func TestV1HealthzAllFailed(t *testing.T) {
	e := faultyEngine(t, "dev0")
	srv := httptest.NewServer(NewEngineHandler(e))
	t.Cleanup(srv.Close)
	failDevice(t, e)

	code, h := getHealth(t, srv.URL+"/v1/healthz")
	if code != http.StatusServiceUnavailable || h.Status != "failed" {
		t.Errorf("healthz all-failed = %d %q, want 503 failed", code, h.Status)
	}
	if code, h := getHealth(t, srv.URL+"/v1/readyz"); code != http.StatusServiceUnavailable || *h.Ready {
		t.Errorf("readyz all-failed = %d, want 503 not ready", code)
	}
}
