package realtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// servedEngine starts a two-device engine, feeds each device the same
// correlated pair eight times, waits for ingestion, and serves the v1
// API over httptest.
func servedEngine(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		engine.WithDevices("vol0", "vol1"),
		engine.WithBackpressure(engine.Block),
	)
	if err != nil {
		t.Fatal(err)
	}
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for _, id := range []string{"vol0", "vol1"} {
		for i := 0; i < 8; i++ {
			base := int64(i) * int64(time.Second)
			must(t, e.Submit(id, blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}))
			must(t, e.Submit(id, blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := e.Stats()
		must(t, err)
		if st.TotalMonitor().Events >= 32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingestion timeout")
		}
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(NewEngineHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

// getEnvelope fetches a v1 route and decodes the {data, error}
// envelope, verifying its invariant: exactly one of data and error is
// set.
func getEnvelope(t *testing.T, url string, data any) (int, *struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if resp.StatusCode == http.StatusOK {
		if env.Error != nil {
			t.Errorf("%s: 200 with error %+v", url, env.Error)
		}
		if string(env.Data) == "null" {
			t.Errorf("%s: 200 with null data", url)
		}
		if data != nil {
			if err := json.Unmarshal(env.Data, data); err != nil {
				t.Fatalf("unmarshal %s data: %v", url, err)
			}
		}
	} else {
		if env.Error == nil {
			t.Errorf("%s: status %d with null error", url, resp.StatusCode)
		}
		if string(env.Data) != "null" {
			t.Errorf("%s: status %d with non-null data %s", url, resp.StatusCode, env.Data)
		}
	}
	return resp.StatusCode, env.Error
}

func TestV1Stats(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body struct {
		Devices []struct {
			ID      string `json:"id"`
			Monitor struct {
				Events uint64
			} `json:"monitor"`
			Dropped uint64 `json:"dropped"`
			Lag     int    `json:"lag"`
		} `json:"devices"`
		Totals struct {
			Monitor struct {
				Events uint64
			} `json:"monitor"`
			Dropped uint64 `json:"dropped"`
		} `json:"totals"`
	}
	code, _ := getEnvelope(t, srv.URL+"/v1/stats", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Devices) != 2 {
		t.Fatalf("devices = %+v, want 2", body.Devices)
	}
	for _, d := range body.Devices {
		if d.Monitor.Events != 16 {
			t.Errorf("device %s events = %d, want 16", d.ID, d.Monitor.Events)
		}
		if d.Dropped != 0 || d.Lag != 0 {
			t.Errorf("device %s dropped/lag = %d/%d, want 0/0", d.ID, d.Dropped, d.Lag)
		}
	}
	if body.Totals.Monitor.Events != 32 {
		t.Errorf("total events = %d, want 32", body.Totals.Monitor.Events)
	}
}

func TestV1Devices(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body []struct {
		ID     string `json:"id"`
		Events uint64 `json:"events"`
	}
	code, _ := getEnvelope(t, srv.URL+"/v1/devices", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body) != 2 || body[0].ID != "vol0" || body[1].ID != "vol1" {
		t.Fatalf("devices = %+v", body)
	}
}

func TestV1DeviceSnapshot(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body struct {
		Device     string `json:"device"`
		TotalPairs int    `json:"totalPairs"`
		Pairs      []struct {
			Count uint32
		} `json:"pairs"`
	}
	code, _ := getEnvelope(t, srv.URL+"/v1/devices/vol0/snapshot?support=3&top=10", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Device != "vol0" || body.TotalPairs != 1 || len(body.Pairs) != 1 {
		t.Fatalf("body = %+v", body)
	}
	if body.Pairs[0].Count < 7 {
		t.Errorf("count = %d, want >= 7", body.Pairs[0].Count)
	}
}

func TestV1MergedSnapshot(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body struct {
		Devices    []string `json:"devices"`
		TotalPairs int      `json:"totalPairs"`
		Pairs      []struct {
			Count uint32
		} `json:"pairs"`
	}
	code, _ := getEnvelope(t, srv.URL+"/v1/snapshot?support=3", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Devices) != 2 || body.TotalPairs != 1 {
		t.Fatalf("body = %+v", body)
	}
	// Both devices saw the same pair: merged count is the sum (>= 14).
	if body.Pairs[0].Count < 14 {
		t.Errorf("merged count = %d, want >= 14 (summed across devices)", body.Pairs[0].Count)
	}
}

func TestV1DeviceRules(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body struct {
		Device string `json:"device"`
		Rules  []struct {
			Confidence float64
		} `json:"rules"`
	}
	code, _ := getEnvelope(t, srv.URL+"/v1/devices/vol1/rules?support=3&confidence=0.9&top=5", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Device != "vol1" || len(body.Rules) != 2 {
		t.Fatalf("body = %+v", body)
	}
	for _, r := range body.Rules {
		if r.Confidence < 0.9 {
			t.Errorf("rule below confidence filter: %+v", r)
		}
	}
}

func TestV1MergedRules(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	var body struct {
		Devices []string `json:"devices"`
		Rules   []struct {
			Support    uint32
			Confidence float64
		} `json:"rules"`
	}
	// Support 10 exceeds any single device's counter (7) but not the
	// fleet-wide sum — only the merged view can satisfy it.
	code, _ := getEnvelope(t, srv.URL+"/v1/rules?support=10&confidence=0.5", &body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Devices) != 2 || len(body.Rules) != 2 {
		t.Fatalf("body = %+v", body)
	}
	if body.Rules[0].Support < 14 {
		t.Errorf("merged support = %d, want >= 14", body.Rules[0].Support)
	}
}

func TestV1UnknownDevice(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	for _, path := range []string{
		"/v1/devices/nope/snapshot",
		"/v1/devices/nope/rules",
	} {
		code, apiErr := getEnvelope(t, srv.URL+path, nil)
		if code != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", path, code)
		}
		if apiErr == nil || apiErr.Code != ErrCodeUnknownDevice {
			t.Errorf("%s: error = %+v, want code %q", path, apiErr, ErrCodeUnknownDevice)
		}
	}
}

func TestV1BadParams(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	for _, path := range []string{
		"/v1/snapshot?support=x",
		"/v1/snapshot?top=-1",
		"/v1/snapshot?support=99999999999999999999",
		"/v1/devices/vol0/snapshot?top=x",
		"/v1/devices/vol0/rules?confidence=2",
		"/v1/rules?confidence=nope",
		"/v1/rules?support=4294967296", // one past uint32
	} {
		code, apiErr := getEnvelope(t, srv.URL+path, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, code)
		}
		if apiErr == nil || apiErr.Code != ErrCodeBadRequest {
			t.Errorf("%s: error = %+v, want code %q", path, apiErr, ErrCodeBadRequest)
		}
	}
}

func TestV1TopClamped(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	// A huge-but-parseable top is clamped to MaxTop, not rejected.
	code, _ := getEnvelope(t, srv.URL+"/v1/snapshot?top=2000000000", nil)
	if code != http.StatusOK {
		t.Errorf("clamped top: status = %d, want 200", code)
	}
}

func TestV1AfterStop(t *testing.T) {
	e, srv := servedEngine(t)
	e.Stop()
	for _, path := range []string{
		"/v1/stats",
		"/v1/devices",
		"/v1/devices/vol0/snapshot",
		"/v1/devices/vol0/rules",
		"/v1/snapshot",
		"/v1/rules",
	} {
		code, apiErr := getEnvelope(t, srv.URL+path, nil)
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s: status = %d, want 503", path, code)
		}
		if apiErr == nil || apiErr.Code != ErrCodeStopped {
			t.Errorf("%s: error = %+v, want code %q", path, apiErr, ErrCodeStopped)
		}
	}
	// Ingest rejects with the same typed code as the queries: a
	// producer racing shutdown sees one consistent answer.
	resp, err := http.Post(srv.URL+"/v1/devices/vol0/events", "application/json",
		strings.NewReader(`{"events":[{"time":1,"op":"read","block":1,"len":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != ErrCodeStopped {
		t.Errorf("post-stop ingest = %d %+v, want 503 %q", resp.StatusCode, env.Error, ErrCodeStopped)
	}
}

// TestAliasesRemoved pins the v1 surface cleanup: the pre-v1
// unversioned routes are gone and answer 404 like any unknown path.
func TestAliasesRemoved(t *testing.T) {
	e, srv := servedEngine(t)
	defer e.Stop()
	for _, path := range []string{"/stats", "/snapshot", "/rules"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404 (alias removed)", path, resp.StatusCode)
		}
	}
}
