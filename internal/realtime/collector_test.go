package realtime

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
	"daccor/internal/workload"
)

func testConfig() Config {
	return Config{
		Pipeline: pipeline.Config{
			Monitor:  monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
			Analyzer: core.Config{ItemCapacity: 4096, PairCapacity: 4096},
		},
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Buffer: -1, Pipeline: testConfig().Pipeline}); err == nil {
		t.Error("want error for negative buffer")
	}
	if _, err := Start(Config{}); err == nil {
		t.Error("want error for zero analyzer capacities")
	}
}

func TestSubmitValidates(t *testing.T) {
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	bad := blktrace.Event{Time: 0, Op: blktrace.OpRead,
		Extent: blktrace.Extent{Block: 1, Len: 0}}
	if err := c.Submit(bad); err == nil {
		t.Error("want validation error")
	}
}

func TestSubmitBatch(t *testing.T) {
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]blktrace.Event, 16)
	for i := range evs {
		evs[i] = blktrace.Event{Time: int64(i) * int64(time.Second), Op: blktrace.OpRead,
			Extent: blktrace.Extent{Block: uint64(10 + i%2*10), Len: 1}}
	}
	if err := c.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	bad := evs
	bad[3].Extent.Len = 0
	if err := c.SubmitBatch(bad); err == nil {
		t.Error("want validation error for bad batch event")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ms, _, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if ms.Events >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch not drained: %d events", ms.Events)
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if err := c.SubmitBatch(evs[:3]); !errors.Is(err, ErrStopped) {
		t.Errorf("SubmitBatch after stop = %v, want ErrStopped", err)
	}
}

func TestEndToEndConcurrent(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.OneToOne,
		Occurrences: 800,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Producer feeds events while a consumer polls snapshots and stats.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, ev := range syn.Trace.Events {
			if err := c.Submit(ev); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			c.ObserveLatency(int64(40 * time.Microsecond))
		}
	}()
	queries := 0
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := c.Snapshot(1); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
			if _, _, err := c.Stats(); err != nil {
				t.Errorf("Stats: %v", err)
				return
			}
			queries++
		}
	}()
	wg.Wait()

	// Wait until every submitted event has been consumed by the loop,
	// then read the final state (queries fail after Stop by design).
	want := uint64(syn.Trace.Len())
	deadline := time.Now().Add(5 * time.Second)
	for {
		mon, _, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if mon.Events >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector consumed %d/%d events before deadline", mon.Events, want)
		}
		time.Sleep(time.Millisecond)
	}
	snap, err := c.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()

	counts := map[blktrace.Pair]uint32{}
	for _, pc := range snap.Pairs {
		counts[pc.Pair] = pc.Count
	}
	for rank, corr := range syn.Correlations {
		if counts[corr.Pairs()[0]] < 5 {
			t.Errorf("planted pair rank %d missing after concurrent run", rank)
		}
	}
	if queries != 50 {
		t.Errorf("consumer completed %d/50 queries", queries)
	}
}

func TestFinalStateViaPreStopQuery(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.ManyToMany,
		Occurrences: 400,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syn.Trace.Events {
		if err := c.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Queries race with in-flight ingestion (the collector's select is
	// fair, not ordered), so wait for the events to be consumed before
	// reading the live state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mon, _, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if mon.Events >= uint64(syn.Trace.Len()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingestion did not finish in time")
		}
		time.Sleep(time.Millisecond)
	}
	snap, err := c.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Pairs) == 0 {
		t.Error("live snapshot empty after full workload")
	}
	// A live save must also succeed mid-session.
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("live snapshot not loadable: %v", err)
	}
	if restored.Pairs().Len() == 0 {
		t.Error("restored live snapshot empty")
	}
	c.Stop()
	if err := c.WriteSnapshot(&buf); !errors.Is(err, ErrStopped) {
		t.Errorf("WriteSnapshot after stop = %v, want ErrStopped", err)
	}
}

func TestQueriesAfterStop(t *testing.T) {
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // idempotent
	if _, err := c.Snapshot(1); !errors.Is(err, ErrStopped) {
		t.Errorf("Snapshot after stop = %v, want ErrStopped", err)
	}
	if _, err := c.Rules(1, 0); !errors.Is(err, ErrStopped) {
		t.Errorf("Rules after stop = %v, want ErrStopped", err)
	}
	if _, _, err := c.Stats(); !errors.Is(err, ErrStopped) {
		t.Errorf("Stats after stop = %v, want ErrStopped", err)
	}
	ev := blktrace.Event{Time: 0, Op: blktrace.OpRead,
		Extent: blktrace.Extent{Block: 1, Len: 1}}
	if err := c.Submit(ev); !errors.Is(err, ErrStopped) {
		t.Errorf("Submit after stop = %v, want ErrStopped", err)
	}
	c.ObserveLatency(1) // must not panic or block
}

func TestConcurrentStop(t *testing.T) {
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Stop()
		}()
	}
	wg.Wait()
}

func TestDropOnBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Buffer = 4
	cfg.DropOnBackpressure = true
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: a query first to make the loop busy is not reliable;
	// instead flood far beyond the buffer from many goroutines. Some
	// events may drop — but none may block.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				ev := blktrace.Event{Time: int64(i), Op: blktrace.OpRead,
					Extent: blktrace.Extent{Block: uint64(g*100000 + i), Len: 1}}
				if err := c.Submit(ev); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	dropped := c.Dropped()
	_, anStats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if anStats.Extents+dropped == 0 {
		t.Error("nothing processed and nothing dropped")
	}
	t.Logf("processed %d extents, dropped %d", anStats.Extents, dropped)
}

func TestRulesQuery(t *testing.T) {
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for i := 0; i < 5; i++ {
		base := int64(i) * int64(time.Second)
		must(t, c.Submit(blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}))
		must(t, c.Submit(blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}))
	}
	// Queries are served concurrently with ingestion; wait until the
	// submitted events have actually been consumed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mon, _, err := c.Stats()
		must(t, err)
		if mon.Events >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("events not consumed in time")
		}
		time.Sleep(time.Millisecond)
	}
	rules, err := c.Rules(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	c.Stop()
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectorPartitioned runs the single-device collector with its
// analyzer split across four partition workers: the same correlated
// workload must surface the same rules the single-partition collector
// finds, through the merged per-device view.
func TestCollectorPartitioned(t *testing.T) {
	if _, err := Start(Config{Pipeline: testConfig().Pipeline, Partitions: -1}); err == nil {
		t.Error("want error for negative partitions")
	}
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.OneToMany,
		Occurrences: 600,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Partitions = 4
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.SubmitBatch(syn.Trace.Events); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ms, _, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if ms.Events >= uint64(syn.Trace.Len()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned collector not drained: %d of %d events", ms.Events, syn.Trace.Len())
		}
		time.Sleep(time.Millisecond)
	}
	rules, err := c.Rules(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("partitioned collector found no rules in a correlated workload")
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("merged snapshot not loadable: %v", err)
	}
	if got := restored.Rules(2, 0.5); len(got) != len(rules) {
		t.Errorf("restored snapshot has %d rules, live view %d", len(got), len(rules))
	}
}
