// Package realtime runs the characterization pipeline as a concurrent
// service: block-layer events and completion latencies stream in from
// producer goroutines, a single collector goroutine owns the monitor
// and analyzer (no locks on the hot path — state is confined, queries
// communicate), and consumers ask for snapshots, rules, or statistics
// at any moment while the stream is live. This is the deployment shape
// the paper sketches: characterization running alongside the workload,
// feeding optimization modules continuously.
package realtime

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

// Config configures a Collector.
type Config struct {
	// Pipeline configures the monitor and analyzer, as in package
	// pipeline.
	Pipeline pipeline.Config
	// Buffer is the event channel capacity; 0 means DefaultBuffer.
	Buffer int
	// DropOnBackpressure makes Submit drop events (counted) instead of
	// blocking when the collector falls behind — a live monitor must
	// never stall the I/O path it observes.
	DropOnBackpressure bool
}

// DefaultBuffer is the default event channel capacity.
const DefaultBuffer = 4096

// ErrStopped is returned by Submit and queries after Stop.
var ErrStopped = errors.New("realtime: collector stopped")

type queryKind int

const (
	querySnapshot queryKind = iota
	queryRules
	queryStats
	querySave
)

type query struct {
	kind       queryKind
	minSupport uint32
	minConf    float64
	saveTo     io.Writer
	reply      chan queryReply
}

type queryReply struct {
	snapshot core.Snapshot
	rules    []core.Rule
	monStats monitor.Stats
	anStats  core.Stats
	saveErr  error
}

// Collector is the running service. All methods are safe for
// concurrent use.
type Collector struct {
	events  chan blktrace.Event
	lats    chan int64
	queries chan query
	stop    chan struct{} // closed by Stop to request shutdown
	done    chan struct{} // closed by the loop on exit

	dropMode bool        // immutable after Start
	dropped  chan uint64 // 1-buffered mailbox holding the drop count
	stopOnce sync.Once
}

// Start launches the collector goroutine.
func Start(cfg Config) (*Collector, error) {
	if cfg.Buffer == 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Buffer < 1 {
		return nil, fmt.Errorf("realtime: Buffer must be >= 1 (got %d)", cfg.Buffer)
	}
	pipe, err := pipeline.New(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		events:   make(chan blktrace.Event, cfg.Buffer),
		lats:     make(chan int64, cfg.Buffer),
		queries:  make(chan query),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		dropMode: cfg.DropOnBackpressure,
		dropped:  make(chan uint64, 1),
	}
	c.dropped <- 0
	go c.loop(pipe)
	return c, nil
}

func (c *Collector) loop(pipe *pipeline.Pipeline) {
	defer close(c.done)
	for {
		select {
		case ev := <-c.events:
			// Monitor validation errors are counted by the caller via
			// Submit; events reaching here are pre-validated.
			_ = pipe.HandleIssue(ev)
		case ns := <-c.lats:
			pipe.Monitor().ObserveLatency(ns)
		case q := <-c.queries:
			c.answer(pipe, q)
		case <-c.stop:
			// Drain whatever producers managed to enqueue, then flush.
			for {
				select {
				case ev := <-c.events:
					_ = pipe.HandleIssue(ev)
				case ns := <-c.lats:
					pipe.Monitor().ObserveLatency(ns)
				case q := <-c.queries:
					c.answer(pipe, q)
				default:
					pipe.Flush()
					return
				}
			}
		}
	}
}

func (c *Collector) answer(pipe *pipeline.Pipeline, q query) {
	var r queryReply
	switch q.kind {
	case querySnapshot:
		r.snapshot = pipe.Snapshot(q.minSupport)
	case queryRules:
		r.rules = pipe.Analyzer().Rules(q.minSupport, q.minConf)
	case queryStats:
		r.monStats = pipe.Monitor().Stats()
		r.anStats = pipe.Analyzer().Stats()
	case querySave:
		_, r.saveErr = pipe.Analyzer().WriteTo(q.saveTo)
	}
	q.reply <- r
}

// Submit offers one issue event to the collector. It validates the
// event, then either enqueues it (blocking under backpressure) or, in
// DropOnBackpressure mode, drops it and counts the drop. It returns
// ErrStopped after Stop.
func (c *Collector) Submit(ev blktrace.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	select {
	case <-c.stop:
		return ErrStopped
	default:
	}
	if c.dropMode {
		select {
		case c.events <- ev:
		case <-c.stop:
			return ErrStopped
		default:
			n := <-c.dropped
			c.dropped <- n + 1
		}
		return nil
	}
	select {
	case c.events <- ev:
		return nil
	case <-c.stop:
		return ErrStopped
	}
}

// ObserveLatency feeds one completion latency (ns). It never blocks
// meaningfully (latencies are droppable signal, not data).
func (c *Collector) ObserveLatency(ns int64) {
	select {
	case c.lats <- ns:
	case <-c.stop:
	default:
	}
}

// Snapshot asks the collector for the current synopsis contents.
func (c *Collector) Snapshot(minSupport uint32) (core.Snapshot, error) {
	r, err := c.ask(query{kind: querySnapshot, minSupport: minSupport})
	return r.snapshot, err
}

// Rules asks for the current directional association rules.
func (c *Collector) Rules(minSupport uint32, minConfidence float64) ([]core.Rule, error) {
	r, err := c.ask(query{kind: queryRules, minSupport: minSupport, minConf: minConfidence})
	return r.rules, err
}

// WriteSnapshot serialises the live synopsis state (see
// core.Analyzer.WriteTo) without stopping ingestion — a consistent
// point-in-time save taken between transactions.
func (c *Collector) WriteSnapshot(w io.Writer) error {
	r, err := c.ask(query{kind: querySave, saveTo: w})
	if err != nil {
		return err
	}
	return r.saveErr
}

// Stats asks for the monitor and analyzer counters.
func (c *Collector) Stats() (monitor.Stats, core.Stats, error) {
	r, err := c.ask(query{kind: queryStats})
	return r.monStats, r.anStats, err
}

func (c *Collector) ask(q query) (queryReply, error) {
	q.reply = make(chan queryReply, 1)
	select {
	case c.queries <- q:
		return <-q.reply, nil
	case <-c.done:
		return queryReply{}, ErrStopped
	}
}

// Dropped reports events discarded under backpressure.
func (c *Collector) Dropped() uint64 {
	n := <-c.dropped
	c.dropped <- n
	return n
}

// Stop shuts the collector down: no new events are accepted, buffered
// events are drained into the pipeline, the open transaction is
// flushed, and the collector goroutine exits. Stop is idempotent and
// returns once shutdown completes. Events submitted concurrently with
// Stop may be discarded.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
