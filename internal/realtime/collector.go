// Package realtime runs the characterization pipeline as a concurrent
// service: block-layer events and completion latencies stream in from
// producer goroutines, a worker goroutine owns the monitor and
// analyzer (no locks on the hot path — state is confined, queries
// communicate), and consumers ask for snapshots, rules, or statistics
// at any moment while the stream is live. This is the deployment shape
// the paper sketches: characterization running alongside the workload,
// feeding optimization modules continuously.
//
// Collector is the single-device convenience: it is the N=1 case of
// the multi-device engine (internal/engine), which owns the worker,
// queue, and backpressure machinery. Use the engine directly to
// characterize several devices at once and aggregate across them.
package realtime

import (
	"errors"
	"fmt"
	"io"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

// Config configures a Collector.
type Config struct {
	// Pipeline configures the monitor and analyzer, as in package
	// pipeline.
	Pipeline pipeline.Config
	// Buffer is the event queue capacity; 0 means DefaultBuffer.
	Buffer int
	// Partitions splits the analyzer into this many sub-shards
	// processed by parallel partition workers (engine.WithPartitions);
	// 0 or 1 keeps the single-partition pipeline. Incompatible with
	// Pipeline.KeepTransactions.
	Partitions int
	// DropOnBackpressure makes Submit drop the oldest queued event
	// (counted) instead of blocking when the collector falls behind —
	// a live monitor must never stall the I/O path it observes.
	DropOnBackpressure bool
}

// Validate reports whether the configuration can start a collector.
func (cfg Config) Validate() error {
	if cfg.Buffer < 0 {
		return fmt.Errorf("realtime: Buffer must be >= 1 (got %d)", cfg.Buffer)
	}
	if cfg.Partitions < 0 {
		return fmt.Errorf("realtime: Partitions must be >= 0 (got %d)", cfg.Partitions)
	}
	return cfg.Pipeline.Validate()
}

// DefaultBuffer is the default event queue capacity.
const DefaultBuffer = engine.DefaultQueueSize

// ErrStopped is returned by Submit and queries after Stop.
var ErrStopped = errors.New("realtime: collector stopped")

// deviceID is the single device a Collector registers in its engine.
const deviceID = "device0"

// Collector is the running service: a one-device engine.Engine with
// the original single-device surface. All methods are safe for
// concurrent use.
type Collector struct {
	eng *engine.Engine
	dev *engine.Device
}

// Start launches the collector.
func Start(cfg Config) (*Collector, error) {
	if cfg.Buffer == 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Buffer < 1 {
		return nil, fmt.Errorf("realtime: Buffer must be >= 1 (got %d)", cfg.Buffer)
	}
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("realtime: Partitions must be >= 0 (got %d)", cfg.Partitions)
	}
	policy := engine.Block
	if cfg.DropOnBackpressure {
		policy = engine.DropOldest
	}
	opts := []engine.Option{
		engine.WithPipeline(cfg.Pipeline),
		engine.WithQueueSize(cfg.Buffer),
		engine.WithBackpressure(policy),
	}
	if cfg.Partitions > 0 {
		opts = append(opts, engine.WithPartitions(cfg.Partitions))
	}
	opts = append(opts, engine.WithDevices(deviceID))
	eng, err := engine.New(opts...)
	if err != nil {
		return nil, err
	}
	dev, err := eng.Device(deviceID)
	if err != nil {
		eng.Stop()
		return nil, err
	}
	return &Collector{eng: eng, dev: dev}, nil
}

// Engine exposes the underlying one-device engine, e.g. to mount the
// versioned HTTP API with NewEngineHandler.
func (c *Collector) Engine() *engine.Engine { return c.eng }

// mapErr translates engine sentinel errors into this package's.
func mapErr(err error) error {
	if errors.Is(err, engine.ErrStopped) {
		return ErrStopped
	}
	return err
}

// Submit offers one issue event to the collector. It validates the
// event, then either enqueues it (blocking under backpressure) or, in
// DropOnBackpressure mode, drops the oldest queued event and counts
// the drop. It returns ErrStopped after Stop.
func (c *Collector) Submit(ev blktrace.Event) error {
	return mapErr(c.dev.Submit(ev))
}

// SubmitBatch offers a batch of issue events under a single queue
// lock acquisition — the cheap path for replayed traces and bulk
// producers. Validation and backpressure behave as for the equivalent
// sequence of Submit calls; an invalid event rejects the whole batch.
func (c *Collector) SubmitBatch(evs []blktrace.Event) error {
	return mapErr(c.dev.SubmitBatch(evs))
}

// ObserveLatency feeds one completion latency (ns). It never blocks
// meaningfully (latencies are droppable signal, not data).
func (c *Collector) ObserveLatency(ns int64) {
	c.dev.ObserveLatency(ns)
}

// Snapshot asks the collector for the current synopsis contents.
func (c *Collector) Snapshot(minSupport uint32) (core.Snapshot, error) {
	snap, err := c.eng.Snapshot(deviceID, minSupport)
	return snap, mapErr(err)
}

// Rules asks for the current directional association rules.
func (c *Collector) Rules(minSupport uint32, minConfidence float64) ([]core.Rule, error) {
	rules, err := c.eng.Rules(deviceID, minSupport, minConfidence)
	return rules, mapErr(err)
}

// WriteSnapshot serialises the live synopsis state (see
// core.Analyzer.WriteTo) without stopping ingestion — a consistent
// point-in-time save taken between transactions.
func (c *Collector) WriteSnapshot(w io.Writer) error {
	return mapErr(c.eng.WriteSnapshot(deviceID, w))
}

// Stats asks for the monitor and analyzer counters.
func (c *Collector) Stats() (monitor.Stats, core.Stats, error) {
	ds, err := c.eng.DeviceStatsFor(deviceID)
	if err != nil {
		return monitor.Stats{}, core.Stats{}, mapErr(err)
	}
	return ds.Monitor, ds.Analyzer, nil
}

// Dropped reports events discarded under backpressure.
func (c *Collector) Dropped() uint64 {
	n, _ := c.eng.Dropped(deviceID)
	return n
}

// Stop shuts the collector down: no new events are accepted, buffered
// events are drained into the pipeline, the open transaction is
// flushed, and the worker exits. Stop is idempotent and returns once
// shutdown completes. Events submitted concurrently with Stop may be
// discarded.
func (c *Collector) Stop() { c.eng.Stop() }
