package realtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/obs"
)

// Query parameter defaults and bounds, shared by every route:
//
//	support     minimum pair counter; unsigned 32-bit; default DefaultSupport
//	top         maximum entries returned; default DefaultTop, clamped to MaxTop
//	confidence  rule confidence threshold in [0,1]; default DefaultConfidence
//	wait        long-poll hold time on the watch routes; a Go duration
//	            string > 0, clamped to MaxWatchWait
//	interval    minimum spacing between SSE watch deliveries; a Go
//	            duration string >= 0, clamped to MaxWatchInterval
//
// Out-of-range values (negative, overflowing 32 bits, confidence
// outside [0,1], an unparsable wait or interval) are rejected with a
// bad_request error rather than silently truncated.
const (
	DefaultSupport    = 5
	DefaultTop        = 100
	MaxTop            = 10_000
	DefaultConfidence = 0.5
)

// MaxIngestBatch bounds the events accepted by one POST to the ingest
// route, and maxIngestBody bounds the request body read to decode
// them, so a single request can neither monopolize a device queue nor
// balloon the decoder.
const (
	MaxIngestBatch = 10_000
	maxIngestBody  = 8 << 20
)

// Machine-readable error codes carried in the v1 envelope.
const (
	ErrCodeBadRequest        = "bad_request"        // malformed or out-of-range parameter or body (HTTP 400)
	ErrCodeUnknownDevice     = "unknown_device"     // no such device id (HTTP 404)
	ErrCodeStopped           = "stopped"            // engine stopped, no live state (HTTP 503)
	ErrCodeDeviceUnavailable = "device_unavailable" // device worker failed permanently (HTTP 503)
	ErrCodeInternal          = "internal"           // unexpected failure (HTTP 500)
)

// apiError is the one typed error every v1 route produces: the
// machine-readable error half of the envelope plus the HTTP status it
// travels under. Handlers return it instead of writing error responses
// inline, so the envelope shape and status mapping live in exactly one
// place (handle).
type apiError struct {
	status  int    // HTTP status; not serialized
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error so an apiError can flow through error-shaped
// plumbing without losing its status and code.
func (e *apiError) Error() string { return e.Message }

// apiErrorf builds a typed route error.
func apiErrorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// badRequest wraps a validation failure as the uniform bad_request
// error every route answers for malformed parameters or bodies.
func badRequest(err error) *apiError {
	return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
}

// engineError maps engine sentinel errors onto the envelope's
// machine-readable codes.
func engineError(err error) *apiError {
	switch {
	case errors.Is(err, engine.ErrUnknownDevice):
		return apiErrorf(http.StatusNotFound, ErrCodeUnknownDevice, "%v", err)
	case errors.Is(err, engine.ErrStopped), errors.Is(err, ErrStopped):
		return apiErrorf(http.StatusServiceUnavailable, ErrCodeStopped, "%v", err)
	case errors.Is(err, engine.ErrDeviceUnavailable):
		// The device's worker failed permanently; the caller should
		// retry against a healthy device, not this one. Typed so clients
		// can tell "device is dead" from "service is restarting".
		return apiErrorf(http.StatusServiceUnavailable, ErrCodeDeviceUnavailable, "%v", err)
	default:
		return apiErrorf(http.StatusInternalServerError, ErrCodeInternal, "%v", err)
	}
}

// apiHandler is a route body: it either writes a success response and
// returns nil, or returns the typed error for handle to envelope.
type apiHandler func(w http.ResponseWriter, r *http.Request) *apiError

// handle adapts an apiHandler to net/http, writing the error envelope
// for every failed route through one code path.
func handle(h apiHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := h(w, r); err != nil {
			writeAPIError(w, err)
		}
	}
}

// envelope is the uniform v1 response shape: exactly one of Data and
// Error is non-null. The health routes are the one exception: they
// answer 503 with Data still populated, because a failing probe's body
// must explain which devices are down.
type envelope struct {
	Data  any       `json:"data"`
	Error *apiError `json:"error"`
}

// NewHTTPHandler exposes a single-device collector's live state over
// HTTP. It serves the versioned v1 API; see NewEngineHandler.
func NewHTTPHandler(c *Collector) http.Handler {
	return NewEngineHandler(c.Engine())
}

// NewEngineHandler exposes a multi-device engine's live state over
// HTTP — the ops surface a self-optimizing storage service consumes.
//
// Versioned API (uniform {data, error} envelope, machine-readable
// error codes; parameter defaults documented above):
//
//	GET /v1/stats                          per-device + total monitor/analyzer counters, drops, lag
//	GET /v1/devices                        registered device IDs with health counters
//	GET /v1/devices/{id}/snapshot          one device's frequent correlations   ?support=&top=
//	GET /v1/devices/{id}/rules             one device's directional rules       ?support=&confidence=&top=
//	GET /v1/devices/{id}/watch             push stream of one device's rule state (see below)
//	GET /v1/snapshot                       fleet-wide merged correlations       ?support=&top=
//	GET /v1/rules                          fleet-wide merged rules              ?support=&confidence=&top=
//	GET /v1/watch                          push stream of the fleet's rule state (see below)
//	GET /v1/metrics                        Prometheus text exposition of the engine's registry
//	GET /v1/healthz                        per-device supervision health (see below)
//	GET /v1/readyz                         readiness probe (see below)
//	POST /v1/devices/{id}/events           batch event ingest (JSON body, see below)
//	DELETE /v1/devices/{id}                unregister a device (drains, flushes, checkpoints)
//
// The watch routes close the loop between detection and consumption:
// instead of polling the query routes with If-None-Match, a consumer
// holds one request open and is *pushed* the new rules/snapshot state
// whenever the synopsis epoch advances (a processed batch, a restart,
// a stop flush — the same epoch that keys the ETags). By default a
// watch is a Server-Sent Events stream: each event carries `id:` = the
// epoch cursor, `event: rules`, and a JSON body {"epoch", "device" or
// "devices", "totalPairs", "pairs", "rules"} shaped by the usual
// support/confidence/top parameters. Rapid ingest coalesces — a slow
// watcher skips intermediate epochs and always receives the newest
// state. Reconnecting with Last-Event-ID resumes: a stale cursor gets
// the current state immediately, the current cursor blocks until the
// next advance, so nothing is delivered twice. When the engine stops
// (or the device fails or is unregistered) watchers receive a terminal
// `event: end` whose body carries the reason, then the stream closes.
//
// With ?wait= the watch degrades to a long poll for clients without
// SSE: the state is returned immediately unless If-None-Match matches
// the current ETag, in which case the request blocks until the epoch
// advances (200 with the new state) or the wait elapses (304). Both
// forms are notification-driven; neither polls internally.
//
// The health routes are the load-balancer/orchestrator surface.
// /v1/healthz always carries per-device detail (state, panic/restart
// counters, checkpoint recency, drops, lag) and answers 200 while
// anything is servable — status "ok" when every device is healthy,
// "degraded" when some device is degraded or failed — and 503 with
// status "failed" only when every registered device has failed.
// /v1/readyz answers 200 {"ready": true} while the engine is serving
// and 503 once it is stopped (shutdown draining) or wholly failed, so
// traffic is steered away before the process exits. Neither route
// does a worker round trip: both stay fast while devices are
// restarting, failed, or backlogged.
//
// The ingest route accepts {"events": [{"time", "pid", "op", "block",
// "len"}, ...]} with op "read" or "write", at most MaxIngestBatch
// events per request, and submits the whole batch to the device under
// one queue lock acquisition (Engine.SubmitBatch). A malformed or
// invalid event rejects the entire batch with bad_request, identifying
// the offending index; nothing is partially ingested. On success the
// response reports {"device", "accepted"}.
//
// Every route flows through one typed error path: errors are 400
// (bad_request), 404 (unknown_device), 503 (stopped,
// device_unavailable), or 500 (internal), always as {"data": null,
// "error": {"code", "message"}}.
//
// Every route passes through metrics middleware that records per-route
// request counts by status code and request latency into the engine's
// registry, so the metrics endpoint also observes the API serving it.
//
// The deprecated pre-v1 unversioned aliases (/stats, /snapshot,
// /rules) have been removed; they now answer 404 like any unknown
// path. Use the /v1 successors.
func NewEngineHandler(e *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	wm := newWatchMetrics(e.Metrics())

	mux.HandleFunc("GET /v1/stats", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		st, err := e.Stats()
		if err != nil {
			return engineError(err)
		}
		writeData(w, statsBody(st))
		return nil
	}))

	mux.HandleFunc("GET /v1/devices", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		st, err := e.Stats()
		if err != nil {
			return engineError(err)
		}
		devices := make([]map[string]any, 0, len(st.Devices))
		for _, d := range st.Devices {
			devices = append(devices, map[string]any{
				"id":      d.Device,
				"events":  d.Monitor.Events,
				"dropped": d.Dropped,
				"lag":     d.Lag,
			})
		}
		writeData(w, devices)
		return nil
	}))

	mux.HandleFunc("GET /v1/devices/{id}/snapshot", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, err := snapshotParams(r)
		if err != nil {
			return badRequest(err)
		}
		id := r.PathValue("id")
		epoch, err := e.Epoch(id)
		if err != nil {
			return engineError(err)
		}
		if revalidated(w, r, fmt.Sprintf("%s-%d-s%d-t%d", id, epoch, support, top)) {
			return nil
		}
		snap, err := e.Snapshot(id, support)
		if err != nil {
			return engineError(err)
		}
		writeData(w, snapshotBody(snap, top, map[string]any{"device": id}))
		return nil
	}))

	mux.HandleFunc("GET /v1/devices/{id}/rules", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, conf, err := ruleParams(r)
		if err != nil {
			return badRequest(err)
		}
		id := r.PathValue("id")
		epoch, err := e.Epoch(id)
		if err != nil {
			return engineError(err)
		}
		if revalidated(w, r, fmt.Sprintf("%s-%d-s%d-t%d-c%g", id, epoch, support, top, conf)) {
			return nil
		}
		rules, err := deviceTopRules(e, id, support, conf, top)
		if err != nil {
			return engineError(err)
		}
		writeData(w, map[string]any{"device": id, "rules": rules})
		return nil
	}))

	mux.HandleFunc("GET /v1/devices/{id}/watch", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		return serveWatch(e, wm, r.PathValue("id"), w, r)
	}))

	mux.HandleFunc("GET /v1/snapshot", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, err := snapshotParams(r)
		if err != nil {
			return badRequest(err)
		}
		sum, n := e.MergedEpoch()
		if revalidated(w, r, fmt.Sprintf("fleet-%d-%d-s%d-t%d", sum, n, support, top)) {
			return nil
		}
		snap, err := e.MergedSnapshot(support)
		if err != nil {
			return engineError(err)
		}
		writeData(w, snapshotBody(snap, top, map[string]any{"devices": e.Devices()}))
		return nil
	}))

	mux.HandleFunc("GET /v1/rules", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, conf, err := ruleParams(r)
		if err != nil {
			return badRequest(err)
		}
		sum, n := e.MergedEpoch()
		if revalidated(w, r, fmt.Sprintf("fleet-%d-%d-s%d-t%d-c%g", sum, n, support, top, conf)) {
			return nil
		}
		rules, err := mergedOrSingleRules(e, support, conf, top)
		if err != nil {
			return engineError(err)
		}
		writeData(w, map[string]any{"devices": e.Devices(), "rules": rules})
		return nil
	}))

	mux.HandleFunc("GET /v1/watch", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		return serveWatch(e, wm, "", w, r)
	}))

	mux.HandleFunc("POST /v1/devices/{id}/events", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		evs, err := decodeIngestBody(r)
		if err != nil {
			return badRequest(err)
		}
		id := r.PathValue("id")
		if err := e.SubmitBatch(id, evs); err != nil {
			return engineError(err)
		}
		writeData(w, map[string]any{"device": id, "accepted": len(evs)})
		return nil
	}))

	mux.HandleFunc("DELETE /v1/devices/{id}", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		id := r.PathValue("id")
		if err := e.Unregister(id); err != nil {
			return engineError(err)
		}
		writeData(w, map[string]any{"device": id, "unregistered": true})
		return nil
	}))

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.TextContentType)
		// An encode error means the scraper went away mid-response.
		_ = e.Metrics().WritePrometheus(w)
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		body, allFailed := healthBody(e)
		status := http.StatusOK
		if allFailed {
			status = http.StatusServiceUnavailable
		}
		writeDataStatus(w, status, body)
	})

	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		body, allFailed := healthBody(e)
		ready := !e.Stopped() && !allFailed
		body["ready"] = ready
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeDataStatus(w, status, body)
	})

	return withHTTPMetrics(e.Metrics(), mux)
}

// HTTP server metric families recorded by the middleware.
const (
	MetricHTTPRequests = "daccor_http_requests_total"
	MetricHTTPLatency  = "daccor_http_request_seconds"
)

// withHTTPMetrics wraps the API mux with per-route observability: a
// request counter labeled {route, code} and a latency histogram
// labeled {route}. The route label is the registered mux pattern (a
// bounded set), never the raw URL path — device IDs and query strings
// must not mint unbounded label cardinality.
func withHTTPMetrics(reg *obs.Registry, mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start).Seconds()
		reg.Counter(MetricHTTPRequests, "HTTP requests served, by route pattern and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(sw.code))).Inc()
		reg.Histogram(MetricHTTPLatency, "HTTP request latency by route pattern, in seconds.",
			obs.LatencyBuckets(), obs.L("route", route)).Observe(elapsed)
	})
}

// statusWriter captures the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// the watch routes can flush SSE events through the metrics middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ingestEvent is the wire shape of one event on the ingest route.
type ingestEvent struct {
	Time  int64  `json:"time"`
	PID   uint32 `json:"pid"`
	Op    string `json:"op"`
	Block uint64 `json:"block"`
	Len   uint32 `json:"len"`
}

// ingestBody is the wire shape of the ingest request body.
type ingestBody struct {
	Events []ingestEvent `json:"events"`
}

// decodeIngestBody parses and validates a batch ingest request. Every
// event is checked here so a bad one answers 400 with its index,
// rather than surfacing as an opaque engine error.
func decodeIngestBody(r *http.Request) ([]blktrace.Event, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	var body ingestBody
	if err := dec.Decode(&body); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %v", err)
	}
	if len(body.Events) == 0 {
		return nil, errors.New("events must be a non-empty array")
	}
	if len(body.Events) > MaxIngestBatch {
		return nil, fmt.Errorf("batch too large: %d events (max %d)", len(body.Events), MaxIngestBatch)
	}
	evs := make([]blktrace.Event, len(body.Events))
	for i, we := range body.Events {
		var op blktrace.Op
		switch we.Op {
		case "read":
			op = blktrace.OpRead
		case "write":
			op = blktrace.OpWrite
		default:
			return nil, fmt.Errorf("event %d: op must be \"read\" or \"write\" (got %q)", i, we.Op)
		}
		evs[i] = blktrace.Event{
			Time:   we.Time,
			PID:    we.PID,
			Op:     op,
			Extent: blktrace.Extent{Block: we.Block, Len: we.Len},
		}
		if err := evs[i].Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %v", i, err)
		}
	}
	return evs, nil
}

// revalidated implements epoch-gated conditional GET on the query
// routes. The tag encodes the device epoch (or fleet epoch sum) plus
// every parameter that shapes the body; the synopsis is deterministic,
// so an equal tag guarantees a byte-equal response and the handler can
// answer 304 without recomputing — or even re-asking — anything. The
// epoch is read before the body is computed, so a tag can only
// under-claim freshness: a matching If-None-Match never hides newer
// state, it only spares work when nothing changed.
func revalidated(w http.ResponseWriter, r *http.Request, tag string) bool {
	etag := `"` + tag + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// mergedOrSingleRules serves fleet-wide rules: the exact live-table
// rules when one device is registered, the merged estimate otherwise.
// The top bound is pushed into extraction (bounded-heap selection), so
// the handler never materializes more rules than it will serve. top=0
// short-circuits to none — the core API reserves limit<=0 for "all".
func mergedOrSingleRules(e *engine.Engine, support uint32, conf float64, top int) ([]core.Rule, error) {
	if top <= 0 {
		return []core.Rule{}, nil
	}
	if devices := e.Devices(); len(devices) == 1 {
		return e.TopRules(devices[0], support, conf, top)
	}
	return e.MergedTopRules(support, conf, top)
}

// deviceTopRules serves one device's rules bounded to top, with the
// same top=0 short-circuit as mergedOrSingleRules.
func deviceTopRules(e *engine.Engine, id string, support uint32, conf float64, top int) ([]core.Rule, error) {
	if top <= 0 {
		return []core.Rule{}, nil
	}
	return e.TopRules(id, support, conf, top)
}

// healthBody builds the shared healthz/readyz payload from the
// engine's supervision view (no worker round trips), and reports
// whether every registered device has failed.
func healthBody(e *engine.Engine) (map[string]any, bool) {
	hs := e.Health()
	devices := make([]map[string]any, 0, len(hs))
	allFailed := len(hs) > 0
	anyUnwell := false
	for _, h := range hs {
		if h.State != engine.Failed {
			allFailed = false
		}
		if h.State != engine.Healthy {
			anyUnwell = true
		}
		d := map[string]any{
			"id":                  h.Device,
			"state":               h.State.String(),
			"panics":              h.Panics,
			"restarts":            h.Restarts,
			"consecutiveRestarts": h.ConsecutiveRestarts,
			"checkpointSeq":       h.CheckpointSeq,
			"dropped":             h.Dropped,
			"lag":                 h.Lag,
		}
		if !h.LastRestart.IsZero() {
			d["lastRestartUnixMs"] = h.LastRestart.UnixMilli()
		}
		if !h.LastCheckpoint.IsZero() {
			d["checkpointAgeSeconds"] = time.Since(h.LastCheckpoint).Seconds()
		}
		devices = append(devices, d)
	}
	status := "ok"
	switch {
	case allFailed:
		status = "failed"
	case anyUnwell:
		status = "degraded"
	}
	return map[string]any{"status": status, "devices": devices}, allFailed
}

func statsBody(st engine.Stats) map[string]any {
	devices := make([]map[string]any, 0, len(st.Devices))
	for _, d := range st.Devices {
		devices = append(devices, map[string]any{
			"id":       d.Device,
			"monitor":  d.Monitor,
			"analyzer": d.Analyzer,
			"windowNs": d.Window.Nanoseconds(),
			"dropped":  d.Dropped,
			"lag":      d.Lag,
		})
	}
	return map[string]any{
		"devices": devices,
		"totals": map[string]any{
			"monitor":  st.TotalMonitor(),
			"analyzer": st.TotalAnalyzer(),
			"dropped":  st.TotalDropped(),
		},
	}
}

func snapshotBody(snap core.Snapshot, top int, extra map[string]any) map[string]any {
	body := map[string]any{
		"totalPairs": len(snap.Pairs),
		"pairs":      snap.TopPairs(top),
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

func snapshotParams(r *http.Request) (support uint32, top int, err error) {
	support, err = supportParam(r)
	if err != nil {
		return 0, 0, err
	}
	top, err = topParam(r)
	if err != nil {
		return 0, 0, err
	}
	return support, top, nil
}

func ruleParams(r *http.Request) (support uint32, top int, conf float64, err error) {
	support, top, err = snapshotParams(r)
	if err != nil {
		return 0, 0, 0, err
	}
	conf = DefaultConfidence
	if v := r.URL.Query().Get("confidence"); v != "" {
		conf, err = strconv.ParseFloat(v, 64)
		if err != nil || conf < 0 || conf > 1 {
			return 0, 0, 0, errors.New("confidence must be a number in [0,1]")
		}
	}
	return support, top, conf, nil
}

// supportParam parses ?support= (default DefaultSupport). Values that
// do not fit an unsigned 32-bit counter are rejected, not truncated.
func supportParam(r *http.Request) (uint32, error) {
	v := r.URL.Query().Get("support")
	if v == "" {
		return DefaultSupport, nil
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, errors.New("support must be a non-negative 32-bit integer")
	}
	return uint32(n), nil
}

// topParam parses ?top= (default DefaultTop). Negative and
// non-numeric values are rejected; anything above MaxTop is clamped so
// a single request cannot ask for an unbounded result set. Parsing at
// 31 bits keeps the conversion to int safe on 32-bit platforms.
func topParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("top")
	if v == "" {
		return DefaultTop, nil
	}
	n, err := strconv.ParseUint(v, 10, 31)
	if err != nil {
		return 0, fmt.Errorf("top must be a non-negative integer <= %d", MaxTop)
	}
	if n > MaxTop {
		n = MaxTop
	}
	return int(n), nil
}

func writeData(w http.ResponseWriter, v any) {
	writeJSON(w, envelope{Data: v})
}

// writeDataStatus writes a data envelope under a non-200 status — the
// health routes answer 503 while still carrying the per-device detail
// a prober needs to say *why*.
func writeDataStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(envelope{Data: v})
}

// writeAPIError writes the error half of the envelope under the
// error's HTTP status — the single exit for every failed v1 route.
func writeAPIError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(envelope{Error: e})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the client went away; nothing to do.
	_ = enc.Encode(v)
}
