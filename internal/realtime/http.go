package realtime

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// NewHTTPHandler exposes a collector's live state over HTTP — the ops
// surface a self-optimizing storage service would poll:
//
//	GET /stats                                 monitor + analyzer counters
//	GET /snapshot?support=5&top=100            frequent correlations
//	GET /rules?support=5&confidence=0.5&top=50 directional rules
//
// All responses are JSON. Query errors are 400s; a stopped collector
// yields 503.
func NewHTTPHandler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		mon, an, err := c.Stats()
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{
			"monitor":  mon,
			"analyzer": an,
			"dropped":  c.Dropped(),
		})
	})
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		support, err := uintParam(r, "support", 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		top, err := uintParam(r, "top", 100)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := c.Snapshot(uint32(support))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{
			"totalPairs": len(snap.Pairs),
			"pairs":      snap.TopPairs(int(top)),
		})
	})
	mux.HandleFunc("GET /rules", func(w http.ResponseWriter, r *http.Request) {
		support, err := uintParam(r, "support", 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		top, err := uintParam(r, "top", 100)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		conf := 0.5
		if v := r.URL.Query().Get("confidence"); v != "" {
			conf, err = strconv.ParseFloat(v, 64)
			if err != nil || conf < 0 || conf > 1 {
				http.Error(w, "confidence must be a number in [0,1]", http.StatusBadRequest)
				return
			}
		}
		rules, err := c.Rules(uint32(support), conf)
		if err != nil {
			httpError(w, err)
			return
		}
		if int(top) < len(rules) {
			rules = rules[:top]
		}
		writeJSON(w, map[string]any{"rules": rules})
	})
	return mux
}

func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, errors.New(name + " must be a non-negative integer")
	}
	return n, nil
}

func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrStopped) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the client went away; nothing to do.
	_ = enc.Encode(v)
}
