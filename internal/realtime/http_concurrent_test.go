package realtime

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// TestHTTPQueryDuringIngest races the v1 query routes against
// sustained batched ingest: writer goroutines stream SubmitBatch into
// both devices while reader goroutines hammer the per-device and
// fleet snapshot/rules routes, including If-None-Match revalidation.
// Under -race this pins the off-worker read path — captures, the
// epoch-gated caches, and the merged-snapshot cache — as data-race
// free, and asserts every response is a well-formed 200 or 304.
func TestHTTPQueryDuringIngest(t *testing.T) {
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		engine.WithDevices("vol0", "vol1"),
		engine.WithBackpressure(engine.Block),
		engine.WithQueueSize(4096),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewEngineHandler(e))
	t.Cleanup(srv.Close)

	const (
		writers   = 2 // one per device
		readers   = 4
		batches   = 50
		batchSize = 64
	)
	stopReaders := make(chan struct{})
	errc := make(chan error, writers+readers)

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(id string) {
			defer writerWG.Done()
			batch := make([]blktrace.Event, batchSize)
			for bn := 0; bn < batches; bn++ {
				for i := range batch {
					seq := bn*batchSize + i
					batch[i] = blktrace.Event{
						Time: int64(seq) * int64(10*time.Microsecond),
						Op:   blktrace.OpRead,
						Extent: blktrace.Extent{
							Block: uint64(seq%512) * 8, Len: 8,
						},
					}
				}
				if err := e.SubmitBatch(id, batch); err != nil {
					errc <- fmt.Errorf("SubmitBatch(%s): %v", id, err)
					return
				}
			}
		}(fmt.Sprintf("vol%d", w))
	}

	urls := []string{
		srv.URL + "/v1/devices/vol0/snapshot?min_support=1",
		srv.URL + "/v1/devices/vol1/rules?min_support=1",
		srv.URL + "/v1/snapshot?min_support=1",
		srv.URL + "/v1/rules?min_support=1",
	}
	var readerWG sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(rd int) {
			defer readerWG.Done()
			url := urls[rd%len(urls)]
			etag := ""
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				req, err := http.NewRequest(http.MethodGet, url, nil)
				if err != nil {
					errc <- err
					return
				}
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errc <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotModified:
				default:
					errc <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
				if tag := resp.Header.Get("ETag"); tag == "" {
					errc <- fmt.Errorf("GET %s: missing ETag", url)
					return
				} else {
					etag = tag
				}
			}
		}(rd)
	}

	writerWG.Wait()
	close(stopReaders)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	e.Stop()
}

// TestHTTPETagRevalidation pins the conditional-GET contract on the
// query routes: a GET yields an ETag; replaying it with If-None-Match
// while the device is quiescent yields 304 with no body; advancing the
// state (more ingest → new epoch) turns the same tag back into a full
// 200 with a different ETag; and the tag is parameter-scoped, so the
// same epoch under different query params never revalidates.
func TestHTTPETagRevalidation(t *testing.T) {
	e, srv := servedEngine(t)

	get := func(url, inm string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	for _, url := range []string{
		srv.URL + "/v1/devices/vol0/snapshot?min_support=2",
		srv.URL + "/v1/devices/vol0/rules?min_support=2",
		srv.URL + "/v1/snapshot?min_support=2",
		srv.URL + "/v1/rules?min_support=2",
	} {
		resp, body := get(url, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		tag := resp.Header.Get("ETag")
		if tag == "" {
			t.Fatalf("GET %s: no ETag", url)
		}
		if body == "" {
			t.Fatalf("GET %s: empty body on 200", url)
		}

		resp, body = get(url, tag)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("GET %s If-None-Match=%s: status %d, want 304", url, tag, resp.StatusCode)
		}
		if body != "" {
			t.Fatalf("GET %s: 304 carried a body: %q", url, body)
		}

		// A different parameterization must not revalidate against the
		// old tag even though the epoch is unchanged.
		other := url + "&top=1"
		resp, _ = get(other, tag)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s If-None-Match=%s: status %d, want 200 (tag is param-scoped)", other, tag, resp.StatusCode)
		}
	}

	// Advance the device: the next processed batch bumps the epoch, so
	// the stale tag must stop revalidating and a new tag must appear.
	url := srv.URL + "/v1/devices/vol0/snapshot?min_support=2"
	resp, _ := get(url, "")
	oldTag := resp.Header.Get("ETag")

	ev := blktrace.Event{Time: int64(time.Hour), Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 999, Len: 1}}
	must(t, e.Submit("vol0", ev))
	deadline := time.Now().Add(5 * time.Second)
	for {
		epoch, err := e.Epoch("vol0")
		must(t, err)
		resp, _ = get(url, oldTag)
		if resp.StatusCode == http.StatusOK && resp.Header.Get("ETag") != oldTag {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch %d: stale tag %s still revalidates after ingest", epoch, oldTag)
		}
		time.Sleep(time.Millisecond)
	}
}
