package realtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"daccor/internal/blktrace"
)

func servedCollector(t *testing.T) (*Collector, *httptest.Server) {
	t.Helper()
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for i := 0; i < 8; i++ {
		base := int64(i) * int64(time.Second)
		must(t, c.Submit(blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}))
		must(t, c.Submit(blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}))
	}
	// Wait for ingestion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mon, _, err := c.Stats()
		must(t, err)
		if mon.Events >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingestion timeout")
		}
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(NewHTTPHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPStats(t *testing.T) {
	c, srv := servedCollector(t)
	defer c.Stop()
	var body struct {
		Monitor struct {
			Events       uint64
			Transactions uint64
		}
		Dropped uint64
	}
	if code := getJSON(t, srv.URL+"/stats", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Monitor.Events != 16 {
		t.Errorf("events = %d, want 16", body.Monitor.Events)
	}
}

func TestHTTPSnapshot(t *testing.T) {
	c, srv := servedCollector(t)
	defer c.Stop()
	var body struct {
		TotalPairs int `json:"totalPairs"`
		Pairs      []struct {
			Pair struct {
				A, B struct {
					Block uint64
					Len   uint32
				}
			}
			Count uint32
		}
	}
	if code := getJSON(t, srv.URL+"/snapshot?support=3&top=10", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.TotalPairs != 1 || len(body.Pairs) != 1 {
		t.Fatalf("body = %+v", body)
	}
	if body.Pairs[0].Pair.A.Block != 10 || body.Pairs[0].Pair.B.Block != 20 {
		t.Errorf("pair = %+v", body.Pairs[0])
	}
	if body.Pairs[0].Count < 7 {
		t.Errorf("count = %d", body.Pairs[0].Count)
	}
}

func TestHTTPRules(t *testing.T) {
	c, srv := servedCollector(t)
	defer c.Stop()
	var body struct {
		Rules []struct {
			From, To struct {
				Block uint64
			}
			Confidence float64
		}
	}
	if code := getJSON(t, srv.URL+"/rules?support=3&confidence=0.9&top=5", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Rules) != 2 {
		t.Fatalf("rules = %+v", body.Rules)
	}
	for _, r := range body.Rules {
		if r.Confidence < 0.9 {
			t.Errorf("rule below confidence filter: %+v", r)
		}
	}
}

func TestHTTPBadParams(t *testing.T) {
	c, srv := servedCollector(t)
	defer c.Stop()
	for _, path := range []string{
		"/snapshot?support=x",
		"/snapshot?top=-1",
		"/rules?confidence=2",
		"/rules?support=99999999999999999999",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPAfterStop(t *testing.T) {
	c, srv := servedCollector(t)
	c.Stop()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}
