package realtime

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/pkg/client"
)

// servedCollector starts a one-device collector with a learned pair
// and serves the v1 API over httptest. These tests consume it through
// the typed pkg/client, so the client's envelope handling, error
// mapping, and ETag cache are exercised against the real handler.
func servedCollector(t *testing.T) (*Collector, *client.Client) {
	t.Helper()
	c, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for i := 0; i < 8; i++ {
		base := int64(i) * int64(time.Second)
		must(t, c.Submit(blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}))
		must(t, c.Submit(blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}))
	}
	// Wait for ingestion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mon, _, err := c.Stats()
		must(t, err)
		if mon.Events >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingestion timeout")
		}
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(NewHTTPHandler(c))
	t.Cleanup(srv.Close)
	return c, client.New(srv.URL)
}

func TestClientStats(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	st, err := cli.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Devices) != 1 || st.Devices[0].Monitor.Events != 16 {
		t.Fatalf("stats = %+v, want one device with 16 events", st)
	}
	if st.Totals.Monitor.Events != 16 {
		t.Errorf("total events = %d, want 16", st.Totals.Monitor.Events)
	}
}

func TestClientSnapshot(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	snap, err := cli.FleetSnapshot(context.Background(), client.Query{Support: 3, Top: 10})
	if err != nil {
		t.Fatal(err)
	}
	if snap.TotalPairs != 1 || len(snap.Pairs) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	p := snap.Pairs[0]
	if p.Pair.A.Block != 10 || p.Pair.B.Block != 20 {
		t.Errorf("pair = %+v", p)
	}
	if p.Count < 7 {
		t.Errorf("count = %d, want >= 7", p.Count)
	}
}

func TestClientRules(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	rs, err := cli.FleetRules(context.Background(), client.Query{Support: 3, Confidence: 0.9, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 2 {
		t.Fatalf("rules = %+v", rs.Rules)
	}
	for _, r := range rs.Rules {
		if r.Confidence < 0.9 {
			t.Errorf("rule below confidence filter: %+v", r)
		}
	}
}

// TestClientETagRevalidation checks the client's conditional-GET
// cache: a repeated identical query is answered 304 by the server and
// served from the client's cache, and still decodes correctly.
func TestClientETagRevalidation(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	q := client.Query{Support: 3, Top: 10}
	first, err := cli.FleetSnapshot(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cli.FleetSnapshot(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cli.Revalidations() != 1 {
		t.Errorf("revalidations = %d, want 1", cli.Revalidations())
	}
	if len(again.Pairs) != len(first.Pairs) || again.TotalPairs != first.TotalPairs {
		t.Errorf("cached decode mismatch: %+v vs %+v", again, first)
	}
}

// TestClientTypedErrors checks the client surfaces the API's
// machine-readable codes as *APIError values.
func TestClientTypedErrors(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	_, err := cli.DeviceSnapshot(context.Background(), "nope", client.Query{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != ErrCodeUnknownDevice {
		t.Errorf("unknown device error = %v, want 404 %s", err, ErrCodeUnknownDevice)
	}
	// Out-of-range confidence travels to the server and comes back as
	// a typed bad_request.
	_, err = cli.FleetRules(context.Background(), client.Query{Confidence: 2})
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != ErrCodeBadRequest {
		t.Errorf("bad param error = %v, want 400 %s", err, ErrCodeBadRequest)
	}
}

func TestClientSubmitEvents(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	n, err := cli.SubmitEvents(context.Background(), "device0", []blktrace.Event{
		{Time: 100 * int64(time.Second), Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 30, Len: 1}},
		{Time: 100*int64(time.Second) + 500, Op: blktrace.OpWrite, Extent: blktrace.Extent{Block: 40, Len: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("accepted = %d, want 2", n)
	}
}

func TestClientHealthReady(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	h, err := cli.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Devices) != 1 {
		t.Errorf("health = %+v", h)
	}
	ready, err := cli.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ready {
		t.Error("ready = false, want true")
	}
}

// TestClientWatch drives the typed client's SSE watcher against the
// live server: the initial state arrives as a push, and a subsequent
// ingest round-trips through the engine into another push.
func TestClientWatch(t *testing.T) {
	c, cli := servedCollector(t)
	defer c.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := cli.Watch(ctx, "device0", client.Query{Support: 3, Top: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var first client.WatchState
	select {
	case first = <-w.Events():
	case <-time.After(5 * time.Second):
		t.Fatal("no initial watch state")
	}
	if first.Device != "device0" || first.TotalPairs != 1 {
		t.Fatalf("initial state = %+v", first)
	}
	if w.LastEventID() != first.Epoch {
		t.Errorf("LastEventID = %q, want %q", w.LastEventID(), first.Epoch)
	}
	if _, err := cli.SubmitEvents(ctx, "device0", []blktrace.Event{
		{Time: 200 * int64(time.Second), Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 10, Len: 1}},
		{Time: 200*int64(time.Second) + 1000, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 20, Len: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-w.Events():
		if st.Epoch == first.Epoch {
			t.Errorf("epoch did not advance past %s", first.Epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no push after ingest")
	}
}

func TestClientAfterStop(t *testing.T) {
	c, cli := servedCollector(t)
	c.Stop()
	_, err := cli.Stats(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != ErrCodeStopped {
		t.Errorf("post-stop error = %v, want 503 %s", err, ErrCodeStopped)
	}
}
