package realtime

import (
	"fmt"
	"net"
	"net/url"
	"testing"
	"time"

	"daccor/internal/blktrace"
)

// TestWatchSlowConsumerDropped proves the SSE write deadline does its
// job: a watcher that connects and then never reads a byte must not
// park its handler goroutine forever on a full TCP window. Once a
// delivery cannot be written within watchWriteTimeout the stream is
// dropped — the watchers gauge returns to zero and the slow-drop
// counter records why.
func TestWatchSlowConsumerDropped(t *testing.T) {
	old := watchWriteTimeout
	watchWriteTimeout = 100 * time.Millisecond
	defer func() { watchWriteTimeout = old }()

	e, srv := servedEngine(t)
	defer e.Stop()

	// Fatten the watch body: thousands of distinct pairs make every
	// delivery tens of kilobytes, so a handful of unread pushes fill
	// the socket buffers and the next write actually blocks.
	var evs []blktrace.Event
	for i := 0; i < 3000; i++ {
		base := int64(1000+i) * int64(time.Second)
		evs = append(evs,
			blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: uint64(100 + 2*i), Len: 1}},
			blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: uint64(101 + 2*i), Len: 1}},
		)
	}
	if err := e.SubmitBatch("vol0", evs); err != nil {
		t.Fatal(err)
	}

	// A raw TCP client that sends the request and then goes silent —
	// no reads, tiny receive buffer, exactly the consumer the guard
	// exists for.
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetReadBuffer(1 << 12)
	}
	fmt.Fprintf(conn, "GET /v1/devices/vol0/watch?support=1&top=10000 HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", u.Host)

	watchers := e.Metrics().Gauge(MetricWatchWatchers, "")
	deadline := time.Now().Add(5 * time.Second)
	for watchers.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never connected")
		}
		time.Sleep(time.Millisecond)
	}

	// Keep the state advancing so the stream keeps pushing into the
	// void until a write jams.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		base := int64(100_000) * int64(time.Second)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.SubmitBatch("vol0", []blktrace.Event{
				{Time: base + int64(i)*int64(time.Second), Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 10, Len: 1}},
				{Time: base + int64(i)*int64(time.Second) + 1000, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 20, Len: 1}},
			})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	deadline = time.Now().Add(20 * time.Second)
	for watchers.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow consumer still holds its watcher slot (gauge %g)", watchers.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := e.Metrics().Counter(MetricWatchSlowDrops, "").Value(); n == 0 {
		t.Error("stream ended but the slow-drop counter never moved")
	}
}
