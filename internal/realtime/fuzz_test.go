package realtime

import (
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
)

// FuzzV1QueryParams throws arbitrary support/top/confidence strings at
// the v1 parameter parsers. The contract under fuzzing: no panics, an
// accepted value is always in range (support fits uint32, top never
// exceeds MaxTop, confidence stays in [0,1]), and rejection agrees with
// the documented grammar rather than depending on parser side effects.
func FuzzV1QueryParams(f *testing.F) {
	f.Add("", "", "")
	f.Add("5", "10", "0.8")
	f.Add("-1", "0", "1.0000001")
	f.Add("4294967296", "99999999999", "NaN")
	f.Add("0x10", "+3", "-0")
	f.Add("٣", "1e2", "Inf")
	f.Fuzz(func(t *testing.T, support, top, conf string) {
		q := url.Values{}
		if support != "" {
			q.Set("support", support)
		}
		if top != "" {
			q.Set("top", top)
		}
		if conf != "" {
			q.Set("confidence", conf)
		}
		r := httptest.NewRequest("GET", "/v1/rules?"+q.Encode(), nil)

		gotSupport, gotTop, err := snapshotParams(r)
		wantSupport, supErr := strconv.ParseUint(support, 10, 32)
		_, topErr := strconv.ParseUint(top, 10, 31)
		wantErr := (support != "" && supErr != nil) || (top != "" && topErr != nil)
		if (err != nil) != wantErr {
			t.Fatalf("snapshotParams(support=%q, top=%q) err = %v, want error %v",
				support, top, err, wantErr)
		}
		if err == nil {
			if support != "" && gotSupport != uint32(wantSupport) {
				t.Errorf("support %q parsed as %d, want %d", support, gotSupport, wantSupport)
			}
			if support == "" && gotSupport != DefaultSupport {
				t.Errorf("empty support = %d, want default %d", gotSupport, DefaultSupport)
			}
			if gotTop < 0 || gotTop > MaxTop {
				t.Errorf("top %q parsed as %d, outside [0, %d]", top, gotTop, MaxTop)
			}
			if top == "" && gotTop != DefaultTop {
				t.Errorf("empty top = %d, want default %d", gotTop, DefaultTop)
			}
		}

		_, _, gotConf, err := ruleParams(r)
		if err == nil && (gotConf < 0 || gotConf > 1) {
			t.Errorf("confidence %q accepted as %v, outside [0,1]", conf, gotConf)
		}
		if err == nil && conf == "" && gotConf != DefaultConfidence {
			t.Errorf("empty confidence = %v, want default %v", gotConf, DefaultConfidence)
		}
	})
}
