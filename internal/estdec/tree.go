package estdec

import (
	"fmt"
	"math"
	"sort"

	"daccor/internal/blktrace"
)

// Tree is a prefix-tree stream miner over general itemsets — the
// monitoring lattice of estDec (Chang & Lee) with estDec+'s
// memory-adaptive pruning. It maintains decayed occurrence counts for
// every monitored itemset, extends the lattice by one level at a time
// (an itemset starts being monitored only after its prefix has proven
// significant — "delayed insertion"), and prunes insignificant
// subtrees periodically, tightening the pruning threshold under a node
// budget.
//
// This is the "general stream FIM" the paper argues against for this
// problem: it tracks itemsets of arbitrary size with estimate-quality
// bookkeeping, where the workload only ever needs exact pairs.
type Tree struct {
	cfg TreeConfig

	items   map[blktrace.Extent]int32
	extents []blktrace.Extent

	root  *treeNode
	nodes int

	txSeq  uint64
	total  float64 // decayed transaction count
	pruned uint64

	// scratch buffers reused across transactions
	ids []int32
}

// TreeConfig parameterises the miner.
type TreeConfig struct {
	// Decay is the per-transaction decay factor in (0, 1].
	Decay float64
	// SigThreshold is the decayed support fraction a monitored itemset
	// needs before the lattice is extended below it (estDec's
	// significant-itemset threshold).
	SigThreshold float64
	// PruneBelow is the support fraction under which a monitored
	// itemset (and its subtree) is discarded during pruning.
	PruneBelow float64
	// MaxItemsetSize caps monitored itemset length; 0 = unlimited.
	MaxItemsetSize int
	// MaxNodes is the node budget; exceeding it tightens pruning until
	// the lattice fits (estDec+'s memory adaptation).
	MaxNodes int
	// PruneEvery is the number of transactions between periodic
	// prunes; 0 means DefaultPruneEvery.
	PruneEvery int
}

func (c TreeConfig) validate() error {
	if c.Decay <= 0 || c.Decay > 1 {
		return fmt.Errorf("estdec: Decay must be in (0,1] (got %v)", c.Decay)
	}
	if c.SigThreshold < 0 || c.SigThreshold >= 1 {
		return fmt.Errorf("estdec: SigThreshold must be in [0,1) (got %v)", c.SigThreshold)
	}
	if c.PruneBelow < 0 || c.PruneBelow >= 1 {
		return fmt.Errorf("estdec: PruneBelow must be in [0,1) (got %v)", c.PruneBelow)
	}
	if c.MaxItemsetSize < 0 {
		return fmt.Errorf("estdec: MaxItemsetSize must be >= 0 (got %d)", c.MaxItemsetSize)
	}
	if c.MaxNodes < 1 {
		return fmt.Errorf("estdec: MaxNodes must be >= 1 (got %d)", c.MaxNodes)
	}
	if c.PruneEvery < 0 {
		return fmt.Errorf("estdec: PruneEvery must be >= 0 (got %d)", c.PruneEvery)
	}
	return nil
}

type treeNode struct {
	children map[int32]*treeNode
	count    float64
	lastTx   uint64
}

// NewTree returns an empty lattice.
func NewTree(cfg TreeConfig) (*Tree, error) {
	if cfg.PruneEvery == 0 {
		cfg.PruneEvery = DefaultPruneEvery
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:   cfg,
		items: make(map[blktrace.Extent]int32),
		root:  &treeNode{children: make(map[int32]*treeNode)},
	}, nil
}

func (t *Tree) intern(e blktrace.Extent) int32 {
	if id, ok := t.items[e]; ok {
		return id
	}
	id := int32(len(t.extents))
	t.items[e] = id
	t.extents = append(t.extents, e)
	return id
}

func (t *Tree) decayedTo(n *treeNode) float64 {
	if t.cfg.Decay == 1 || n.lastTx == t.txSeq {
		return n.count
	}
	return n.count * math.Pow(t.cfg.Decay, float64(t.txSeq-n.lastTx))
}

// Process consumes one transaction's deduplicated extents: every
// monitored itemset contained in the transaction has its decayed count
// incremented, and the lattice grows below itemsets that have become
// significant.
func (t *Tree) Process(extents []blktrace.Extent) {
	t.txSeq++
	t.total = t.total*t.cfg.Decay + 1

	t.ids = t.ids[:0]
	for _, e := range extents {
		t.ids = append(t.ids, t.intern(e))
	}
	sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
	// Transactions are sets; drop accidental duplicates.
	t.ids = dedupSorted(t.ids)

	t.update(t.root, t.ids, 0)

	if t.cfg.PruneEvery > 0 && int(t.txSeq)%t.cfg.PruneEvery == 0 || t.nodes > t.cfg.MaxNodes {
		t.prune()
	}
}

func dedupSorted(ids []int32) []int32 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// update recursively touches every monitored itemset that is a subset
// of ids (as a prefix-tree path) and extends the lattice one level
// where permitted. depth is the current itemset length.
func (t *Tree) update(n *treeNode, ids []int32, depth int) {
	if t.cfg.MaxItemsetSize > 0 && depth >= t.cfg.MaxItemsetSize {
		return
	}
	// May this node grow children? The root always may (1-itemsets are
	// always monitored); deeper nodes only once significant.
	mayExtend := n == t.root ||
		t.decayedTo(n) >= t.cfg.SigThreshold*t.total
	for i, id := range ids {
		child, ok := n.children[id]
		if !ok {
			if !mayExtend {
				continue
			}
			child = &treeNode{children: make(map[int32]*treeNode), lastTx: t.txSeq}
			n.children[id] = child
			t.nodes++
		} else {
			child.count = t.decayedTo(child)
			child.lastTx = t.txSeq
		}
		child.count++
		t.update(child, ids[i+1:], depth+1)
	}
}

// prune removes insignificant subtrees; under node pressure the
// threshold doubles until the lattice fits the budget.
func (t *Tree) prune() {
	threshold := t.cfg.PruneBelow
	t.pruneAt(threshold)
	for t.nodes > t.cfg.MaxNodes {
		if threshold == 0 {
			threshold = 1.0 / math.Max(t.total, 1)
		} else {
			threshold *= 2
		}
		if threshold > 1 {
			break // would empty the tree; keep what remains
		}
		t.pruneAt(threshold)
	}
}

func (t *Tree) pruneAt(threshold float64) {
	bar := threshold * t.total
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		for id, child := range n.children {
			if t.decayedTo(child) < bar {
				t.nodes -= subtreeSize(child)
				t.pruned += uint64(subtreeSize(child))
				delete(n.children, id)
				continue
			}
			walk(child)
		}
	}
	walk(t.root)
}

func subtreeSize(n *treeNode) int {
	size := 1
	for _, c := range n.children {
		size += subtreeSize(c)
	}
	return size
}

// ItemsetEstimate is one monitored itemset and its decayed count.
type ItemsetEstimate struct {
	Extents  []blktrace.Extent
	Estimate float64
}

// FrequentItemsets returns monitored itemsets of length >= minLen with
// decayed support fraction >= minFraction, sorted by descending
// estimate (ties by itemset).
func (t *Tree) FrequentItemsets(minFraction float64, minLen int) []ItemsetEstimate {
	bar := minFraction * t.total
	var out []ItemsetEstimate
	var path []int32
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		for id, child := range n.children {
			path = append(path, id)
			if c := t.decayedTo(child); c >= bar && len(path) >= minLen {
				ext := make([]blktrace.Extent, len(path))
				for i, pid := range path {
					ext[i] = t.extents[pid]
				}
				sort.Slice(ext, func(i, j int) bool { return ext[i].Less(ext[j]) })
				out = append(out, ItemsetEstimate{Extents: ext, Estimate: c})
			}
			walk(child)
			path = path[:len(path)-1]
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		a, b := out[i].Extents, out[j].Extents
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k].Less(b[k])
			}
		}
		return false
	})
	return out
}

// FrequentPairSet returns the 2-itemsets above minFraction as a pair
// set, for accuracy comparison with the synopsis.
func (t *Tree) FrequentPairSet(minFraction float64) map[blktrace.Pair]struct{} {
	out := make(map[blktrace.Pair]struct{})
	for _, is := range t.FrequentItemsets(minFraction, 2) {
		if len(is.Extents) == 2 {
			out[blktrace.MakePair(is.Extents[0], is.Extents[1])] = struct{}{}
		}
	}
	return out
}

// Nodes returns the number of monitored itemsets (lattice nodes).
func (t *Tree) Nodes() int { return t.nodes }

// Pruned returns the cumulative number of discarded nodes.
func (t *Tree) Pruned() uint64 { return t.pruned }

// Transactions returns the number of transactions processed.
func (t *Tree) Transactions() uint64 { return t.txSeq }
