// Package estdec implements a stream-based frequent-pair miner in the
// style of estDec/estDec+ (Shin, Lee & Lee, Information Sciences 2014):
// decayed support counting over a transaction stream with an insertion
// threshold, periodic pruning of insignificant itemsets, and a hard
// memory cap standing in for the CP-tree's memory adaptation.
//
// It is the comparison baseline for the paper's argument that stream
// FIM "is not adequate to handle the pace of disk I/O streams with a
// reasonable accuracy": general stream miners spend their budget
// tracking maximal itemsets and decayed estimates, while the paper's
// synopsis tracks exactly the pairs that matter. Restricting this
// implementation to pairs already concedes the baseline its best case.
package estdec

import (
	"fmt"
	"math"
	"sort"

	"daccor/internal/blktrace"
)

// Config parameterises the miner.
type Config struct {
	// Decay is the per-transaction decay factor d in (0, 1]; older
	// transactions' contributions shrink by d per subsequent
	// transaction. estDec writes d = b^(-1/h); 1 disables decay.
	Decay float64
	// PruneBelow is the support fraction under which a tracked pair is
	// discarded during pruning (estDec's insignificant-itemset
	// threshold).
	PruneBelow float64
	// MaxEntries caps the number of tracked pairs; exceeding it
	// triggers a prune, and if the table is still over budget the
	// lowest-estimate pairs are dropped (the CP-tree's forced merging
	// under memory pressure, approximated).
	MaxEntries int
	// PruneEvery is the number of transactions between periodic
	// prunes; 0 means DefaultPruneEvery.
	PruneEvery int
}

// DefaultPruneEvery prunes once per thousand transactions.
const DefaultPruneEvery = 1000

func (c Config) validate() error {
	if c.Decay <= 0 || c.Decay > 1 {
		return fmt.Errorf("estdec: Decay must be in (0,1] (got %v)", c.Decay)
	}
	if c.PruneBelow < 0 || c.PruneBelow >= 1 {
		return fmt.Errorf("estdec: PruneBelow must be in [0,1) (got %v)", c.PruneBelow)
	}
	if c.MaxEntries < 1 {
		return fmt.Errorf("estdec: MaxEntries must be >= 1 (got %d)", c.MaxEntries)
	}
	if c.PruneEvery < 0 {
		return fmt.Errorf("estdec: PruneEvery must be >= 0 (got %d)", c.PruneEvery)
	}
	return nil
}

type pairEntry struct {
	count  float64 // decayed occurrence estimate
	lastTx uint64  // transaction sequence of the last update
}

// Miner is the stream pair miner. Not safe for concurrent use.
type Miner struct {
	cfg   Config
	pairs map[blktrace.Pair]*pairEntry
	txSeq uint64  // transactions processed
	total float64 // decayed transaction count |D|_decayed

	pruned uint64
}

// New returns an empty miner.
func New(cfg Config) (*Miner, error) {
	if cfg.PruneEvery == 0 {
		cfg.PruneEvery = DefaultPruneEvery
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Miner{cfg: cfg, pairs: make(map[blktrace.Pair]*pairEntry)}, nil
}

// decayedTo brings an entry's count forward to the current sequence.
func (m *Miner) decayedTo(e *pairEntry) float64 {
	if m.cfg.Decay == 1 || e.lastTx == m.txSeq {
		return e.count
	}
	return e.count * math.Pow(m.cfg.Decay, float64(m.txSeq-e.lastTx))
}

// Process consumes one transaction's deduplicated extents.
func (m *Miner) Process(extents []blktrace.Extent) {
	m.txSeq++
	m.total = m.total*m.cfg.Decay + 1
	for i := 0; i < len(extents); i++ {
		for j := i + 1; j < len(extents); j++ {
			p := blktrace.MakePair(extents[i], extents[j])
			if e, ok := m.pairs[p]; ok {
				e.count = m.decayedTo(e) + 1
				e.lastTx = m.txSeq
			} else {
				m.pairs[p] = &pairEntry{count: 1, lastTx: m.txSeq}
			}
		}
	}
	if int(m.txSeq)%m.cfg.PruneEvery == 0 || len(m.pairs) > m.cfg.MaxEntries {
		m.prune()
	}
}

// prune drops pairs whose decayed support fraction fell below
// PruneBelow, then enforces MaxEntries by dropping the smallest
// estimates.
func (m *Miner) prune() {
	threshold := m.cfg.PruneBelow * m.total
	for p, e := range m.pairs {
		if m.decayedTo(e) < threshold {
			delete(m.pairs, p)
			m.pruned++
		}
	}
	if over := len(m.pairs) - m.cfg.MaxEntries; over > 0 {
		type kv struct {
			p blktrace.Pair
			c float64
		}
		all := make([]kv, 0, len(m.pairs))
		for p, e := range m.pairs {
			all = append(all, kv{p, m.decayedTo(e)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].c < all[j].c })
		for _, victim := range all[:over] {
			delete(m.pairs, victim.p)
			m.pruned++
		}
	}
}

// PairEstimate is one tracked pair and its decayed occurrence estimate.
type PairEstimate struct {
	Pair     blktrace.Pair
	Estimate float64
}

// Snapshot returns tracked pairs with decayed support fraction >=
// minFraction, sorted by descending estimate.
func (m *Miner) Snapshot(minFraction float64) []PairEstimate {
	threshold := minFraction * m.total
	out := make([]PairEstimate, 0, len(m.pairs))
	for p, e := range m.pairs {
		if c := m.decayedTo(e); c >= threshold {
			out = append(out, PairEstimate{Pair: p, Estimate: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		pi, pj := out[i].Pair, out[j].Pair
		if pi.A != pj.A {
			return pi.A.Less(pj.A)
		}
		return pi.B.Less(pj.B)
	})
	return out
}

// PairSet returns the snapshot pairs as a set for accuracy comparison.
func (m *Miner) PairSet(minFraction float64) map[blktrace.Pair]struct{} {
	snap := m.Snapshot(minFraction)
	set := make(map[blktrace.Pair]struct{}, len(snap))
	for _, pe := range snap {
		set[pe.Pair] = struct{}{}
	}
	return set
}

// Tracked returns the number of pairs currently tracked.
func (m *Miner) Tracked() int { return len(m.pairs) }

// Pruned returns the cumulative number of pairs discarded.
func (m *Miner) Pruned() uint64 { return m.pruned }

// Transactions returns the number of transactions processed.
func (m *Miner) Transactions() uint64 { return m.txSeq }
