package estdec

import (
	"math"
	"math/rand"
	"testing"

	"daccor/internal/blktrace"
)

func e(b uint64) blktrace.Extent { return blktrace.Extent{Block: b, Len: 1} }

func mustMiner(t *testing.T, cfg Config) *Miner {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Decay: 0, MaxEntries: 10},
		{Decay: 1.1, MaxEntries: 10},
		{Decay: 1, PruneBelow: 1, MaxEntries: 10},
		{Decay: 1, PruneBelow: -0.1, MaxEntries: 10},
		{Decay: 1, MaxEntries: 0},
		{Decay: 1, MaxEntries: 1, PruneEvery: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestExactCountsWithoutDecay(t *testing.T) {
	m := mustMiner(t, Config{Decay: 1, MaxEntries: 100})
	tx := []blktrace.Extent{e(1), e(2)}
	for i := 0; i < 7; i++ {
		m.Process(tx)
	}
	snap := m.Snapshot(0)
	if len(snap) != 1 || math.Abs(snap[0].Estimate-7) > 1e-9 {
		t.Errorf("snapshot = %+v, want one pair with estimate 7", snap)
	}
	if m.Transactions() != 7 {
		t.Errorf("Transactions = %d", m.Transactions())
	}
}

func TestDecayShrinksOldPairs(t *testing.T) {
	m := mustMiner(t, Config{Decay: 0.9, MaxEntries: 100, PruneEvery: 1 << 30})
	old := []blktrace.Extent{e(1), e(2)}
	m.Process(old)
	// 50 transactions of unrelated pairs decay the old one.
	for i := 0; i < 50; i++ {
		m.Process([]blktrace.Extent{e(uint64(100 + i)), e(uint64(200 + i))})
	}
	snap := m.Snapshot(0)
	var oldEst, newEst float64
	oldPair := blktrace.MakePair(e(1), e(2))
	for _, pe := range snap {
		if pe.Pair == oldPair {
			oldEst = pe.Estimate
		} else if newEst == 0 {
			newEst = pe.Estimate // some recent pair
		}
	}
	if oldEst == 0 {
		t.Fatal("old pair vanished without pruning")
	}
	want := math.Pow(0.9, 50)
	if math.Abs(oldEst-want) > 1e-9 {
		t.Errorf("old estimate = %v, want %v", oldEst, want)
	}
}

func TestPruneBelowThreshold(t *testing.T) {
	m := mustMiner(t, Config{Decay: 0.9, PruneBelow: 0.05, MaxEntries: 10_000, PruneEvery: 10})
	m.Process([]blktrace.Extent{e(1), e(2)})
	for i := 0; i < 100; i++ {
		m.Process([]blktrace.Extent{e(uint64(1000 + i)), e(uint64(2000 + i))})
	}
	oldPair := blktrace.MakePair(e(1), e(2))
	for _, pe := range m.Snapshot(0) {
		if pe.Pair == oldPair {
			t.Fatal("decayed-out pair should have been pruned")
		}
	}
	if m.Pruned() == 0 {
		t.Error("Pruned counter should be positive")
	}
}

func TestMemoryCapEnforced(t *testing.T) {
	m := mustMiner(t, Config{Decay: 1, MaxEntries: 50, PruneEvery: 1 << 30})
	for i := 0; i < 500; i++ {
		m.Process([]blktrace.Extent{e(uint64(2 * i)), e(uint64(2*i + 1))})
	}
	if m.Tracked() > 50 {
		t.Errorf("Tracked = %d, cap 50", m.Tracked())
	}
}

func TestCapKeepsHighestEstimates(t *testing.T) {
	m := mustMiner(t, Config{Decay: 1, MaxEntries: 5, PruneEvery: 1 << 30})
	hot := []blktrace.Extent{e(1), e(2)}
	for i := 0; i < 20; i++ {
		m.Process(hot)
		m.Process([]blktrace.Extent{e(uint64(100 + 2*i)), e(uint64(101 + 2*i))})
	}
	hotPair := blktrace.MakePair(e(1), e(2))
	found := false
	for _, pe := range m.Snapshot(0) {
		if pe.Pair == hotPair {
			found = true
			if pe.Estimate < 19 {
				t.Errorf("hot estimate = %v, want ~20", pe.Estimate)
			}
		}
	}
	if !found {
		t.Error("memory cap evicted the hottest pair")
	}
}

func TestSnapshotThresholdAndOrder(t *testing.T) {
	m := mustMiner(t, Config{Decay: 1, MaxEntries: 100})
	a := []blktrace.Extent{e(1), e(2)}
	b := []blktrace.Extent{e(3), e(4)}
	for i := 0; i < 8; i++ {
		m.Process(a)
	}
	for i := 0; i < 2; i++ {
		m.Process(b)
	}
	// total = 10 transactions; fractions 0.8 and 0.2.
	if snap := m.Snapshot(0.5); len(snap) != 1 {
		t.Errorf("Snapshot(0.5) = %d pairs, want 1", len(snap))
	}
	snap := m.Snapshot(0.1)
	if len(snap) != 2 || snap[0].Estimate < snap[1].Estimate {
		t.Errorf("Snapshot(0.1) = %+v", snap)
	}
	if len(m.PairSet(0.1)) != 2 {
		t.Error("PairSet size mismatch")
	}
}

func TestSingleExtentNoPairs(t *testing.T) {
	m := mustMiner(t, Config{Decay: 1, MaxEntries: 10})
	m.Process([]blktrace.Extent{e(1)})
	m.Process(nil)
	if m.Tracked() != 0 {
		t.Error("no pairs expected")
	}
}

func TestRecurringPairSurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mustMiner(t, Config{Decay: 0.999, PruneBelow: 0.001, MaxEntries: 200, PruneEvery: 100})
	hot := []blktrace.Extent{e(7), e(8)}
	for i := 0; i < 2000; i++ {
		if i%4 == 0 {
			m.Process(hot)
		} else {
			m.Process([]blktrace.Extent{e(uint64(rng.Intn(100000))), e(uint64(rng.Intn(100000)))})
		}
	}
	if _, ok := m.PairSet(0.1)[blktrace.MakePair(e(7), e(8))]; !ok {
		t.Error("hot pair should clear a 10% support fraction")
	}
}
