package estdec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
	"daccor/internal/fim"
)

func mustTree(t *testing.T, cfg TreeConfig) *Tree {
	t.Helper()
	tr, err := NewTree(cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tr
}

func TestTreeConfigValidation(t *testing.T) {
	bad := []TreeConfig{
		{Decay: 0, MaxNodes: 10},
		{Decay: 1.1, MaxNodes: 10},
		{Decay: 1, SigThreshold: 1, MaxNodes: 10},
		{Decay: 1, PruneBelow: -0.1, MaxNodes: 10},
		{Decay: 1, MaxItemsetSize: -1, MaxNodes: 10},
		{Decay: 1, MaxNodes: 0},
		{Decay: 1, MaxNodes: 1, PruneEvery: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTree(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

// With no decay, no thresholds, and no pruning pressure, the lattice
// counts itemsets exactly: every itemset's count equals its true
// support from its first occurrence onward — which, since nodes are
// created on first occurrence along the prefix path within a single
// update, is the full support. Cross-check against brute-force FIM.
func TestTreeExactCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var txs [][]blktrace.Extent
	for i := 0; i < 120; i++ {
		n := 1 + rng.Intn(4)
		seen := map[uint64]struct{}{}
		var tx []blktrace.Extent
		for len(tx) < n {
			b := uint64(rng.Intn(10))
			if _, dup := seen[b]; dup {
				continue
			}
			seen[b] = struct{}{}
			tx = append(tx, e(b))
		}
		txs = append(txs, tx)
	}
	tree := mustTree(t, TreeConfig{Decay: 1, MaxNodes: 1 << 20, PruneEvery: 1 << 30})
	for _, tx := range txs {
		tree.Process(tx)
	}
	ds := fim.NewDataset(txs)
	ref, err := fim.BruteForce(ds, fim.Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, fs := range ref {
		key := ""
		for _, ext := range ds.Decode(fs.Items) {
			key += ext.String() + "|"
		}
		want[key] = fs.Support
	}
	got := tree.FrequentItemsets(0, 1)
	if len(got) != len(want) {
		t.Fatalf("tree monitors %d itemsets, brute force has %d", len(got), len(want))
	}
	for _, is := range got {
		key := ""
		for _, ext := range is.Extents {
			key += ext.String() + "|"
		}
		if sup, ok := want[key]; !ok || math.Abs(is.Estimate-float64(sup)) > 1e-9 {
			t.Fatalf("itemset %v: estimate %v, brute force %d (found=%v)",
				is.Extents, is.Estimate, sup, ok)
		}
	}
}

func TestTreeDelayedInsertion(t *testing.T) {
	// SigThreshold 0.5: pairs appear in the lattice only after both
	// the prefix item is significant.
	tree := mustTree(t, TreeConfig{Decay: 1, SigThreshold: 0.5, MaxNodes: 1 << 16, PruneEvery: 1 << 30})
	a, b := e(1), e(2)
	// First transaction: items inserted, but the pair's prefix (a) was
	// not yet significant when the transaction arrived... it becomes
	// significant during this very update (count 1 of total 1), so the
	// child may appear. Use a noisy stream so significance is real.
	for i := 0; i < 10; i++ {
		tree.Process([]blktrace.Extent{e(uint64(100 + i))})
	}
	// a now arrives with b; a's support fraction is 0 < 0.5 at first.
	tree.Process([]blktrace.Extent{a, b})
	if len(tree.FrequentItemsets(0, 2)) != 0 {
		t.Fatal("pair monitored before its prefix was significant")
	}
	// Make a significant, then the pair can be monitored and counted.
	for i := 0; i < 20; i++ {
		tree.Process([]blktrace.Extent{a, b})
	}
	pairs := tree.FrequentPairSet(0)
	if _, ok := pairs[blktrace.MakePair(a, b)]; !ok {
		t.Fatal("pair not monitored after prefix became significant")
	}
}

func TestTreeDecayAndPrune(t *testing.T) {
	tree := mustTree(t, TreeConfig{Decay: 0.9, PruneBelow: 0.05, MaxNodes: 1 << 16, PruneEvery: 10})
	tree.Process([]blktrace.Extent{e(1), e(2)})
	for i := 0; i < 100; i++ {
		tree.Process([]blktrace.Extent{e(uint64(1000 + i))})
	}
	if _, ok := tree.FrequentPairSet(0)[blktrace.MakePair(e(1), e(2))]; ok {
		t.Error("decayed-out pair should have been pruned")
	}
	if tree.Pruned() == 0 {
		t.Error("Pruned should be positive")
	}
}

func TestTreeMemoryCap(t *testing.T) {
	tree := mustTree(t, TreeConfig{Decay: 0.999, MaxNodes: 200, PruneEvery: 1 << 30})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tree.Process([]blktrace.Extent{
			e(uint64(rng.Intn(5000))), e(uint64(rng.Intn(5000))),
		})
	}
	// The cap is enforced after each over-budget transaction; a single
	// transaction can add at most a handful of nodes.
	if tree.Nodes() > 220 {
		t.Errorf("Nodes = %d, budget 200", tree.Nodes())
	}
}

func TestTreeMaxItemsetSize(t *testing.T) {
	tree := mustTree(t, TreeConfig{Decay: 1, MaxItemsetSize: 2, MaxNodes: 1 << 16, PruneEvery: 1 << 30})
	for i := 0; i < 5; i++ {
		tree.Process([]blktrace.Extent{e(1), e(2), e(3)})
	}
	for _, is := range tree.FrequentItemsets(0, 1) {
		if len(is.Extents) > 2 {
			t.Errorf("itemset %v exceeds MaxItemsetSize", is.Extents)
		}
	}
	if len(tree.FrequentItemsets(0, 2)) != 3 {
		t.Errorf("want the 3 pairs monitored, got %d", len(tree.FrequentItemsets(0, 2)))
	}
}

func TestTreeHotPairSurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := mustTree(t, TreeConfig{
		Decay: 0.999, PruneBelow: 0.001, MaxNodes: 500, PruneEvery: 50,
	})
	hot := []blktrace.Extent{e(7), e(8)}
	for i := 0; i < 3000; i++ {
		if i%4 == 0 {
			tree.Process(hot)
		} else {
			tree.Process([]blktrace.Extent{
				e(uint64(rng.Intn(50000))), e(uint64(rng.Intn(50000))),
			})
		}
	}
	if _, ok := tree.FrequentPairSet(0.1)[blktrace.MakePair(e(7), e(8))]; !ok {
		t.Error("hot pair lost under memory pressure")
	}
}

// Property: exact mode (no decay, no thresholds) agrees with brute
// force on arbitrary small streams.
func TestTreeMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var txs [][]blktrace.Extent
		for i := 0; i < int(n%60); i++ {
			size := 1 + rng.Intn(4)
			seen := map[uint64]struct{}{}
			var tx []blktrace.Extent
			for len(tx) < size {
				b := uint64(rng.Intn(8))
				if _, dup := seen[b]; dup {
					continue
				}
				seen[b] = struct{}{}
				tx = append(tx, e(b))
			}
			txs = append(txs, tx)
		}
		tree, err := NewTree(TreeConfig{Decay: 1, MaxNodes: 1 << 20, PruneEvery: 1 << 30})
		if err != nil {
			return false
		}
		for _, tx := range txs {
			tree.Process(tx)
		}
		ds := fim.NewDataset(txs)
		ref, err := fim.BruteForce(ds, fim.Options{MinSupport: 1})
		if err != nil {
			return false
		}
		return len(tree.FrequentItemsets(0, 1)) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
