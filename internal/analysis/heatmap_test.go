package analysis

import (
	"strings"
	"testing"

	"daccor/internal/blktrace"
)

func TestHeatmapAddClampAt(t *testing.T) {
	hm := NewHeatmap(4, 3)
	hm.Add(0, 0)
	hm.Add(3, 2)
	hm.Add(-5, 99) // clamps to (0, 2)
	if hm.At(0, 0) != 1 || hm.At(3, 2) != 1 || hm.At(0, 2) != 1 {
		t.Errorf("cells = %v", hm.Cells)
	}
	if hm.Max() != 1 || hm.NonEmpty() != 3 {
		t.Errorf("Max=%d NonEmpty=%d", hm.Max(), hm.NonEmpty())
	}
	hm.Add(0, 0)
	if hm.Max() != 2 {
		t.Error("Max should track the hottest cell")
	}
}

func TestOccupancySimilarity(t *testing.T) {
	a := NewHeatmap(2, 2)
	b := NewHeatmap(2, 2)
	a.Add(0, 0)
	a.Add(1, 1)
	b.Add(0, 0)
	b.Add(0, 1)
	got, err := a.OccupancySimilarity(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0/3 {
		t.Errorf("similarity = %v, want 1/3", got)
	}
	if s, _ := a.OccupancySimilarity(a); s != 1 {
		t.Error("self similarity should be 1")
	}
	empty1, empty2 := NewHeatmap(2, 2), NewHeatmap(2, 2)
	if s, _ := empty1.OccupancySimilarity(empty2); s != 1 {
		t.Error("empty maps are identical")
	}
	if _, err := a.OccupancySimilarity(NewHeatmap(3, 3)); err == nil {
		t.Error("want error for dim mismatch")
	}
}

func TestRender(t *testing.T) {
	hm := NewHeatmap(3, 2)
	hm.Add(0, 0) // bottom-left
	hm.Add(2, 1) // top-right
	out := hm.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Top line shows y=1: mark at x=2; bottom line y=0: mark at x=0.
	if lines[0][2] == ' ' || lines[1][0] == ' ' {
		t.Errorf("marks misplaced:\n%s", out)
	}
	if lines[0][0] != ' ' || lines[1][2] != ' ' {
		t.Errorf("unexpected marks:\n%s", out)
	}
}

func TestTraceHeatmap(t *testing.T) {
	tr := &blktrace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(blktrace.Event{Time: int64(i), Op: blktrace.OpRead,
			Extent: blktrace.Extent{Block: uint64(i * 10), Len: 1}})
	}
	hm := TraceHeatmap(tr, 10, 10)
	if hm.NonEmpty() == 0 {
		t.Fatal("heatmap empty")
	}
	// A linear sweep should light the diagonal.
	for i := 0; i < 10; i++ {
		if hm.At(i, i) == 0 {
			t.Errorf("diagonal cell (%d,%d) empty", i, i)
		}
	}
	if TraceHeatmap(&blktrace.Trace{}, 4, 4).NonEmpty() != 0 {
		t.Error("empty trace heatmap should be empty")
	}
}

func TestPairScatterSymmetric(t *testing.T) {
	pairs := map[blktrace.Pair]struct{}{
		pair(100, 900): {},
	}
	hm := PairScatter(pairs, 10, 0, 0)
	// Both (A,B) and (B,A) must be plotted.
	found := 0
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if hm.At(x, y) > 0 {
				found++
				if hm.At(y, x) == 0 {
					t.Errorf("asymmetric at (%d,%d)", x, y)
				}
			}
		}
	}
	if found != 2 {
		t.Errorf("cells lit = %d, want 2", found)
	}
	if PairScatter(nil, 4, 0, 0).NonEmpty() != 0 {
		t.Error("empty pairs scatter should be empty")
	}
}

func TestPairScatterSharedAxes(t *testing.T) {
	offline := map[blktrace.Pair]struct{}{pair(0, 1000): {}, pair(500, 700): {}}
	online := map[blktrace.Pair]struct{}{pair(0, 1000): {}}
	lo, hi := BlockRangeOfPairs(offline)
	if lo != 0 || hi != 1000 {
		t.Fatalf("range = [%d, %d]", lo, hi)
	}
	a := PairScatter(offline, 20, lo, hi)
	b := PairScatter(online, 20, lo, hi)
	sim, err := a.OccupancySimilarity(b)
	if err != nil {
		t.Fatal(err)
	}
	// online ⊂ offline: similarity = |online cells| / |offline cells|.
	if sim <= 0 || sim > 1 {
		t.Errorf("similarity = %v", sim)
	}
}
