package analysis

import (
	"testing"

	"daccor/internal/blktrace"
)

func extPair(aBlock uint64, aLen uint32, bBlock uint64, bLen uint32) blktrace.Pair {
	return blktrace.MakePair(
		blktrace.Extent{Block: aBlock, Len: aLen},
		blktrace.Extent{Block: bBlock, Len: bLen},
	)
}

func TestSequentialityOf(t *testing.T) {
	freqs := map[blktrace.Pair]int{
		extPair(0, 8, 8, 8):      10, // adjacent (0..7 then 8..15)
		extPair(100, 4, 204, 4):  5,  // gap of 100 blocks
		extPair(300, 4, 1304, 4): 5,  // gap of 1000 blocks
		extPair(500, 8, 504, 8):  2,  // overlapping: neither adjacent nor gapped
	}
	s := SequentialityOf(freqs)
	if s.Pairs != 4 || s.AdjacentPairs != 1 {
		t.Fatalf("counts = %+v", s)
	}
	if s.AdjacentFrac != 0.25 {
		t.Errorf("AdjacentFrac = %v, want 0.25", s.AdjacentFrac)
	}
	if got, want := s.WeightedAdjacentFrac, 10.0/22.0; got != want {
		t.Errorf("WeightedAdjacentFrac = %v, want %v", got, want)
	}
	if s.MeanGapBlocks != 550 {
		t.Errorf("MeanGapBlocks = %v, want 550", s.MeanGapBlocks)
	}
}

func TestSequentialityEmpty(t *testing.T) {
	s := SequentialityOf(nil)
	if s.Pairs != 0 || s.AdjacentFrac != 0 || s.MeanGapBlocks != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestSequentialityAllAdjacent(t *testing.T) {
	freqs := map[blktrace.Pair]int{
		extPair(0, 4, 4, 4):  1,
		extPair(8, 4, 12, 4): 1,
	}
	s := SequentialityOf(freqs)
	if s.AdjacentFrac != 1 || s.WeightedAdjacentFrac != 1 {
		t.Errorf("stats = %+v", s)
	}
}
