package analysis

import "daccor/internal/blktrace"

// Sequentiality summarises the spatial structure of a correlation set:
// how much of it is adjacent extents (sequential access patterns, the
// paper's "trivially correlated" diagonal squares of Fig. 7) versus
// distant extents (the semantic correlations that are "harder to
// infer" and that random-placement optimizations like read-ahead
// cannot exploit).
type Sequentiality struct {
	Pairs         int // pairs examined
	AdjacentPairs int // A's end touches B's start (canonical order)

	// AdjacentFrac counts unique pairs; WeightedAdjacentFrac weights by
	// correlation frequency.
	AdjacentFrac         float64
	WeightedAdjacentFrac float64

	// MeanGapBlocks is the mean block distance between the extents of
	// the non-adjacent, non-overlapping pairs — how far read-ahead
	// would have to reach.
	MeanGapBlocks float64
}

// SequentialityOf computes the summary from a pair-frequency map.
func SequentialityOf(freqs map[blktrace.Pair]int) Sequentiality {
	var s Sequentiality
	var adjWeight, totWeight int
	var gapSum float64
	var gapCount int
	for p, f := range freqs {
		s.Pairs++
		totWeight += f
		if p.A.End() == p.B.Block {
			s.AdjacentPairs++
			adjWeight += f
			continue
		}
		if p.A.Overlaps(p.B) {
			continue
		}
		gapSum += float64(p.B.Block - p.A.End())
		gapCount++
	}
	if s.Pairs > 0 {
		s.AdjacentFrac = float64(s.AdjacentPairs) / float64(s.Pairs)
	}
	if totWeight > 0 {
		s.WeightedAdjacentFrac = float64(adjWeight) / float64(totWeight)
	}
	if gapCount > 0 {
		s.MeanGapBlocks = gapSum / float64(gapCount)
	}
	return s
}
