// Package analysis computes the paper's evaluation metrics: the
// correlation-frequency CDF (Fig. 5), the optimal table-size curve
// (Fig. 6), representability versus optimal (Fig. 9), the
// detection-accuracy comparison between the online synopsis and the
// offline FIM ground truth (Figs. 7–8 and the >90% headline), the
// block-space heatmaps and pair scatter plots (Figs. 1, 7, 8), and the
// concept-drift snapshot similarity (Fig. 10).
package analysis

import (
	"sort"

	"daccor/internal/blktrace"
)

// CDFPoint is one point of Fig. 5: at a given correlation frequency
// (support), the fraction of unique extent pairs with frequency <= that
// support and the frequency-weighted fraction.
type CDFPoint struct {
	Support      int
	UniqueFrac   float64 // solid line: by number of unique pairs
	WeightedFrac float64 // dashed line: weighted by occurrence count
}

// CorrelationCDF computes the Fig. 5 curves from a pair-frequency map.
// Points are emitted at every distinct support value, ascending.
func CorrelationCDF(freqs map[blktrace.Pair]int) []CDFPoint {
	if len(freqs) == 0 {
		return nil
	}
	bySupport := make(map[int]int) // support -> number of pairs
	totalPairs, totalWeight := 0, 0
	for _, f := range freqs {
		bySupport[f]++
		totalPairs++
		totalWeight += f
	}
	supports := make([]int, 0, len(bySupport))
	for s := range bySupport {
		supports = append(supports, s)
	}
	sort.Ints(supports)
	out := make([]CDFPoint, 0, len(supports))
	cumPairs, cumWeight := 0, 0
	for _, s := range supports {
		n := bySupport[s]
		cumPairs += n
		cumWeight += n * s
		out = append(out, CDFPoint{
			Support:      s,
			UniqueFrac:   float64(cumPairs) / float64(totalPairs),
			WeightedFrac: float64(cumWeight) / float64(totalWeight),
		})
	}
	return out
}

// SortedFrequencies returns pair frequencies in descending order — the
// ranking behind Fig. 6's optimal curve.
func SortedFrequencies(freqs map[blktrace.Pair]int) []int {
	out := make([]int, 0, len(freqs))
	for _, f := range freqs {
		out = append(out, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// OptimalCurve returns, for each table size n = 1..len(freqs), the
// maximum fraction of total pair occurrences representable by any n
// pairs (i.e. the n most frequent) — Fig. 6. Index i holds the value
// for n = i+1.
func OptimalCurve(freqs map[blktrace.Pair]int) []float64 {
	sorted := SortedFrequencies(freqs)
	total := 0
	for _, f := range sorted {
		total += f
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(sorted))
	cum := 0
	for i, f := range sorted {
		cum += f
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// OptimalFraction returns the best possible captured-frequency fraction
// for a table of n entries (0 for n <= 0; the full total once n covers
// every pair).
func OptimalFraction(freqs map[blktrace.Pair]int, n int) float64 {
	if n <= 0 {
		return 0
	}
	curve := OptimalCurve(freqs)
	if curve == nil {
		return 0
	}
	if n > len(curve) {
		n = len(curve)
	}
	return curve[n-1]
}

// CapturedFraction returns the fraction of total pair occurrences (per
// the ground-truth freqs) covered by the pairs the synopsis currently
// holds.
func CapturedFraction(held map[blktrace.Pair]struct{}, freqs map[blktrace.Pair]int) float64 {
	total, captured := 0, 0
	for p, f := range freqs {
		total += f
		if _, ok := held[p]; ok {
			captured += f
		}
	}
	if total == 0 {
		return 0
	}
	return float64(captured) / float64(total)
}

// Representability is Fig. 9's metric: the fraction captured by the
// synopsis relative to the optimal fraction possible for the same
// number of entries.
func Representability(held map[blktrace.Pair]struct{}, freqs map[blktrace.Pair]int, entries int) float64 {
	opt := OptimalFraction(freqs, entries)
	if opt == 0 {
		return 0
	}
	got := CapturedFraction(held, freqs)
	return got / opt
}

// PRF is a precision/recall/F1 summary of detected pairs against a
// ground-truth set.
type PRF struct {
	Precision, Recall, F1       float64
	TruePos, FalsePos, FalseNeg int
}

// DetectionPRF compares a detected pair set against the truth set.
func DetectionPRF(detected, truth map[blktrace.Pair]struct{}) PRF {
	var prf PRF
	for p := range detected {
		if _, ok := truth[p]; ok {
			prf.TruePos++
		} else {
			prf.FalsePos++
		}
	}
	for p := range truth {
		if _, ok := detected[p]; !ok {
			prf.FalseNeg++
		}
	}
	if prf.TruePos+prf.FalsePos > 0 {
		prf.Precision = float64(prf.TruePos) / float64(prf.TruePos+prf.FalsePos)
	}
	if prf.TruePos+prf.FalseNeg > 0 {
		prf.Recall = float64(prf.TruePos) / float64(prf.TruePos+prf.FalseNeg)
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// FrequentSet filters a frequency map to pairs at or above minSupport,
// as a set.
func FrequentSet(freqs map[blktrace.Pair]int, minSupport int) map[blktrace.Pair]struct{} {
	out := make(map[blktrace.Pair]struct{})
	for p, f := range freqs {
		if f >= minSupport {
			out[p] = struct{}{}
		}
	}
	return out
}

// WeightedRecall is the fraction of frequent-pair *occurrences* (per
// the ground truth at minSupport) whose pair the detector holds: the
// paper's "percentage of data access correlations detected".
func WeightedRecall(detected map[blktrace.Pair]struct{}, freqs map[blktrace.Pair]int, minSupport int) float64 {
	total, captured := 0, 0
	for p, f := range freqs {
		if f < minSupport {
			continue
		}
		total += f
		if _, ok := detected[p]; ok {
			captured += f
		}
	}
	if total == 0 {
		return 0
	}
	return float64(captured) / float64(total)
}

// Jaccard returns |a ∩ b| / |a ∪ b| (1 for two empty sets) — the
// snapshot similarity used in the concept-drift experiment.
func Jaccard(a, b map[blktrace.Pair]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for p := range a {
		if _, ok := b[p]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
