package analysis

import (
	"fmt"
	"strings"

	"daccor/internal/blktrace"
)

// Heatmap is a 2D binned density grid. Row 0 is the bottom of the plot
// (lowest block numbers), matching the paper's axes.
type Heatmap struct {
	W, H  int
	Cells []int // row-major, len W*H
	// XLabel and YLabel describe the axes for rendering.
	XLabel, YLabel string
}

// NewHeatmap returns an empty w×h grid.
func NewHeatmap(w, h int) *Heatmap {
	return &Heatmap{W: w, H: h, Cells: make([]int, w*h)}
}

// Add increments the cell at (x, y); out-of-range points are clamped to
// the border.
func (hm *Heatmap) Add(x, y int) {
	x = clamp(x, 0, hm.W-1)
	y = clamp(y, 0, hm.H-1)
	hm.Cells[y*hm.W+x]++
}

// At returns the count at (x, y).
func (hm *Heatmap) At(x, y int) int { return hm.Cells[y*hm.W+x] }

// Max returns the maximum cell count.
func (hm *Heatmap) Max() int {
	m := 0
	for _, c := range hm.Cells {
		if c > m {
			m = c
		}
	}
	return m
}

// NonEmpty returns the number of cells with at least one hit.
func (hm *Heatmap) NonEmpty() int {
	n := 0
	for _, c := range hm.Cells {
		if c > 0 {
			n++
		}
	}
	return n
}

// OccupancySimilarity is the Jaccard similarity of the two maps'
// non-empty cells — the quantitative stand-in for the paper's "visually
// recognizably similar" comparison of offline and online plots
// (Figs. 7–8). The maps must have equal dimensions.
func (hm *Heatmap) OccupancySimilarity(other *Heatmap) (float64, error) {
	if hm.W != other.W || hm.H != other.H {
		return 0, fmt.Errorf("analysis: heatmap dims %dx%d vs %dx%d", hm.W, hm.H, other.W, other.H)
	}
	inter, union := 0, 0
	for i := range hm.Cells {
		a, b := hm.Cells[i] > 0, other.Cells[i] > 0
		if a && b {
			inter++
		}
		if a || b {
			union++
		}
	}
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}

// Render draws the heatmap as ASCII art (top row = highest y), using a
// density ramp. It is how cmd/experiments prints the figure panels.
func (hm *Heatmap) Render() string {
	ramp := []byte(" .:-=+*#%@")
	max := hm.Max()
	var sb strings.Builder
	sb.Grow((hm.W + 1) * hm.H)
	for y := hm.H - 1; y >= 0; y-- {
		for x := 0; x < hm.W; x++ {
			c := hm.At(x, y)
			if c == 0 {
				sb.WriteByte(' ')
				continue
			}
			idx := 1 + c*(len(ramp)-2)/max
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TraceHeatmap bins a trace as Fig. 1: x = request sequence, y =
// starting block number.
func TraceHeatmap(t *blktrace.Trace, w, h int) *Heatmap {
	hm := NewHeatmap(w, h)
	hm.XLabel, hm.YLabel = "request sequence", "block"
	if t.Len() == 0 {
		return hm
	}
	minB, maxB := blockRangeEvents(t.Events)
	span := float64(maxB-minB) + 1
	for i, ev := range t.Events {
		x := i * w / t.Len()
		y := int(float64(ev.Extent.Block-minB) / span * float64(h))
		hm.Add(x, y)
	}
	return hm
}

func blockRangeEvents(evs []blktrace.Event) (lo, hi uint64) {
	lo, hi = evs[0].Extent.Block, evs[0].Extent.Block
	for _, ev := range evs {
		if ev.Extent.Block < lo {
			lo = ev.Extent.Block
		}
		if ev.Extent.Block > hi {
			hi = ev.Extent.Block
		}
	}
	return lo, hi
}

// PairScatter bins extent pairs as the correlation panels of Figs. 7–8:
// both (A, B) and (B, A) are plotted, block number on both axes. The
// block range is taken from the pairs themselves unless a positive
// span is forced via lo/hi (pass hi = 0 to auto-range).
func PairScatter(pairs map[blktrace.Pair]struct{}, bins int, lo, hi uint64) *Heatmap {
	hm := NewHeatmap(bins, bins)
	hm.XLabel, hm.YLabel = "block", "block"
	if len(pairs) == 0 {
		return hm
	}
	if hi <= lo {
		first := true
		for p := range pairs {
			for _, b := range [...]uint64{p.A.Block, p.B.Block} {
				if first || b < lo {
					lo = b
				}
				if first || b > hi {
					hi = b
				}
				first = false
			}
		}
	}
	span := float64(hi-lo) + 1
	bin := func(b uint64) int {
		if b < lo {
			return 0
		}
		return int(float64(b-lo) / span * float64(bins))
	}
	for p := range pairs {
		ax, bx := bin(p.A.Block), bin(p.B.Block)
		hm.Add(ax, bx)
		hm.Add(bx, ax)
	}
	return hm
}

// BlockRangeOfPairs returns the min and max starting block across a
// pair set, so offline and online scatters can share axes.
func BlockRangeOfPairs(pairs map[blktrace.Pair]struct{}) (lo, hi uint64) {
	first := true
	for p := range pairs {
		for _, b := range [...]uint64{p.A.Block, p.B.Block} {
			if first || b < lo {
				lo = b
			}
			if first || b > hi {
				hi = b
			}
			first = false
		}
	}
	return lo, hi
}
