package analysis

import (
	"fmt"
	"io"
	"math"
)

// SVG rendering for the figure artifacts: heatmaps (Figs. 1, 7, 8, 10)
// and line charts (Figs. 5, 6, 9). Plain stdlib, deterministic output.

// SVG writes the heatmap as an SVG image: one rect per non-empty cell,
// shaded by log-scaled density.
func (hm *Heatmap) SVG(w io.Writer, title string) error {
	const cell = 8
	const margin = 24
	width := hm.W*cell + 2*margin
	height := hm.H*cell + 2*margin + 20
	ew := &errWriter{w: w}
	ew.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	ew.printf(`<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	ew.printf(`<text x="%d" y="16" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		margin, xmlEscape(title))
	maxCount := hm.Max()
	logMax := math.Log1p(float64(maxCount))
	for y := 0; y < hm.H; y++ {
		for x := 0; x < hm.W; x++ {
			c := hm.At(x, y)
			if c == 0 {
				continue
			}
			// Dark = dense; log scale keeps sparse cells visible.
			shade := 1.0
			if logMax > 0 {
				shade = math.Log1p(float64(c)) / logMax
			}
			grey := int(230 - 210*shade)
			// SVG's y axis grows downward; the heatmap's grows upward.
			px := margin + x*cell
			py := 20 + margin + (hm.H-1-y)*cell
			ew.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`+"\n",
				px, py, cell, cell, grey, grey, grey)
		}
	}
	// Border and axis labels.
	ew.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444444"/>`+"\n",
		margin, 20+margin, hm.W*cell, hm.H*cell)
	if hm.XLabel != "" {
		ew.printf(`<text x="%d" y="%d" font-family="sans-serif" font-size="10" fill="#444444">%s</text>`+"\n",
			margin, height-6, xmlEscape(hm.XLabel))
	}
	ew.printf("</svg>\n")
	return ew.err
}

// Series is one line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChartSVG writes a simple line chart. If logX is set, x values are
// plotted on a log10 axis (values must be positive).
func LineChartSVG(w io.Writer, title, xLabel, yLabel string, logX bool, series []Series) error {
	const (
		width, height = 520, 340
		left, right   = 56, 16
		top, bottom   = 32, 44
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x := s.X[i]
			if logX {
				if x <= 0 {
					return fmt.Errorf("analysis: log axis needs positive x (got %v)", x)
				}
				x = math.Log10(x)
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY <= minY {
		maxY = 1
		if math.IsInf(minX, 1) {
			minX, maxX = 0, 1
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	tx := func(x float64) float64 {
		if logX {
			x = math.Log10(x)
		}
		return float64(left) + (x-minX)/(maxX-minX)*plotW
	}
	ty := func(y float64) float64 {
		return float64(top) + (1-(y-minY)/(maxY-minY))*plotH
	}

	ew := &errWriter{w: w}
	ew.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	ew.printf(`<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	ew.printf(`<text x="%d" y="20" font-family="sans-serif" font-size="13">%s</text>`+"\n",
		left, xmlEscape(title))
	ew.printf(`<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444444"/>`+"\n",
		left, top, plotW, plotH)
	ew.printf(`<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="#444444">%s</text>`+"\n",
		left, height-10, xmlEscape(xLabel))
	ew.printf(`<text x="12" y="%d" font-family="sans-serif" font-size="11" fill="#444444" transform="rotate(-90 12 %d)">%s</text>`+"\n",
		top+int(plotH/2), top+int(plotH/2), xmlEscape(yLabel))

	palette := []string{"#1b6ca8", "#c0392b", "#27ae60", "#8e44ad", "#d35400", "#16a085", "#7f8c8d"}
	for si, s := range series {
		color := palette[si%len(palette)]
		ew.printf(`<polyline fill="none" stroke="%s" stroke-width="1.6" points="`, color)
		for i := range s.X {
			ew.printf("%.1f,%.1f ", tx(s.X[i]), ty(s.Y[i]))
		}
		ew.printf(`"/>` + "\n")
		// Legend entry.
		ly := top + 14 + si*14
		ew.printf(`<rect x="%d" y="%d" width="10" height="3" fill="%s"/>`+"\n", width-right-110, ly, color)
		ew.printf(`<text x="%d" y="%d" font-family="sans-serif" font-size="10" fill="#222222">%s</text>`+"\n",
			width-right-94, ly+5, xmlEscape(s.Name))
	}
	ew.printf("</svg>\n")
	return ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
