package analysis

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG as XML to catch escaping/nesting mistakes.
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, data)
		}
	}
}

func TestHeatmapSVG(t *testing.T) {
	hm := NewHeatmap(4, 3)
	hm.XLabel = "blocks & <time>"
	hm.Add(0, 0)
	hm.Add(3, 2)
	hm.Add(3, 2)
	var buf bytes.Buffer
	if err := hm.SVG(&buf, `pairs "A<B"`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Error("missing svg root")
	}
	// Two non-empty cells → two shaded rects plus background + border.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Errorf("rect count = %d, want 4", got)
	}
	if strings.Contains(out, `"A<B"`) {
		t.Error("title not escaped")
	}
	wellFormed(t, buf.Bytes())
}

func TestHeatmapSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewHeatmap(2, 2).SVG(&buf, "empty"); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestLineChartSVG(t *testing.T) {
	series := []Series{
		{Name: "wdev", X: []float64{1, 10, 100}, Y: []float64{0.1, 0.5, 1.0}},
		{Name: "stg & co", X: []float64{1, 10, 100}, Y: []float64{0.05, 0.2, 0.6}},
	}
	var buf bytes.Buffer
	if err := LineChartSVG(&buf, "Fig 9 <test>", "table size", "fraction", true, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
	if !strings.Contains(out, "stg &amp; co") {
		t.Error("legend not escaped")
	}
	wellFormed(t, buf.Bytes())
}

func TestLineChartSVGLogAxisRejectsNonPositive(t *testing.T) {
	series := []Series{{Name: "bad", X: []float64{0}, Y: []float64{1}}}
	var buf bytes.Buffer
	if err := LineChartSVG(&buf, "t", "x", "y", true, series); err == nil {
		t.Error("want error for x=0 on log axis")
	}
}

func TestLineChartSVGDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := LineChartSVG(&buf, "empty", "x", "y", false, nil); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	// Single point, flat series.
	buf.Reset()
	if err := LineChartSVG(&buf, "flat", "x", "y", false, []Series{
		{Name: "one", X: []float64{5}, Y: []float64{0}},
	}); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}
