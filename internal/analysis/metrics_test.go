package analysis

import (
	"math"
	"testing"

	"daccor/internal/blktrace"
)

func pair(a, b uint64) blktrace.Pair {
	return blktrace.MakePair(blktrace.Extent{Block: a, Len: 1}, blktrace.Extent{Block: b, Len: 1})
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCorrelationCDF(t *testing.T) {
	// Three pairs at support 1, one at 5. Unique: 3/4 at s=1, 4/4 at 5.
	// Weighted: 3/8 at s=1, 8/8 at 5.
	freqs := map[blktrace.Pair]int{
		pair(1, 2): 1, pair(3, 4): 1, pair(5, 6): 1, pair(7, 8): 5,
	}
	cdf := CorrelationCDF(freqs)
	if len(cdf) != 2 {
		t.Fatalf("points = %d, want 2", len(cdf))
	}
	if cdf[0].Support != 1 || !approx(cdf[0].UniqueFrac, 0.75) || !approx(cdf[0].WeightedFrac, 0.375) {
		t.Errorf("cdf[0] = %+v", cdf[0])
	}
	if cdf[1].Support != 5 || !approx(cdf[1].UniqueFrac, 1) || !approx(cdf[1].WeightedFrac, 1) {
		t.Errorf("cdf[1] = %+v", cdf[1])
	}
	if CorrelationCDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	freqs := map[blktrace.Pair]int{}
	for i := uint64(0); i < 50; i++ {
		freqs[pair(2*i, 2*i+1)] = int(i%7) + 1
	}
	cdf := CorrelationCDF(freqs)
	for i := 1; i < len(cdf); i++ {
		if cdf[i].UniqueFrac < cdf[i-1].UniqueFrac || cdf[i].WeightedFrac < cdf[i-1].WeightedFrac {
			t.Fatal("CDF must be non-decreasing")
		}
		if cdf[i].Support <= cdf[i-1].Support {
			t.Fatal("supports must ascend")
		}
	}
	last := cdf[len(cdf)-1]
	if !approx(last.UniqueFrac, 1) || !approx(last.WeightedFrac, 1) {
		t.Errorf("CDF must end at 1: %+v", last)
	}
	// Zipf-ish property used by the paper: unique rises faster than
	// weighted at the low-support end.
	if cdf[0].UniqueFrac <= cdf[0].WeightedFrac {
		t.Error("unique fraction should lead weighted fraction at low support")
	}
}

func TestOptimalCurveAndFraction(t *testing.T) {
	freqs := map[blktrace.Pair]int{
		pair(1, 2): 10, pair(3, 4): 5, pair(5, 6): 4, pair(7, 8): 1,
	}
	curve := OptimalCurve(freqs) // total 20: 0.5, 0.75, 0.95, 1.0
	want := []float64{0.5, 0.75, 0.95, 1.0}
	for i, w := range want {
		if !approx(curve[i], w) {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], w)
		}
	}
	if !approx(OptimalFraction(freqs, 2), 0.75) {
		t.Error("OptimalFraction(2) wrong")
	}
	if !approx(OptimalFraction(freqs, 100), 1) {
		t.Error("OptimalFraction beyond size should saturate at 1")
	}
	if OptimalFraction(freqs, 0) != 0 || OptimalFraction(nil, 5) != 0 {
		t.Error("degenerate OptimalFraction cases")
	}
}

func TestCapturedAndRepresentability(t *testing.T) {
	freqs := map[blktrace.Pair]int{
		pair(1, 2): 10, pair(3, 4): 5, pair(5, 6): 4, pair(7, 8): 1,
	}
	held := map[blktrace.Pair]struct{}{
		pair(1, 2): {}, pair(7, 8): {}, // captured 11/20
	}
	if got := CapturedFraction(held, freqs); !approx(got, 0.55) {
		t.Errorf("CapturedFraction = %v", got)
	}
	// Optimal for 2 entries = 0.75; representability = 0.55/0.75.
	if got := Representability(held, freqs, 2); !approx(got, 0.55/0.75) {
		t.Errorf("Representability = %v", got)
	}
	if Representability(held, nil, 2) != 0 {
		t.Error("representability of empty truth should be 0")
	}
	if CapturedFraction(nil, nil) != 0 {
		t.Error("captured of empty should be 0")
	}
	// Holding the optimal set gives exactly 1.
	opt := map[blktrace.Pair]struct{}{pair(1, 2): {}, pair(3, 4): {}}
	if got := Representability(opt, freqs, 2); !approx(got, 1) {
		t.Errorf("optimal representability = %v, want 1", got)
	}
}

func TestDetectionPRF(t *testing.T) {
	truth := map[blktrace.Pair]struct{}{
		pair(1, 2): {}, pair(3, 4): {}, pair(5, 6): {}, pair(7, 8): {},
	}
	detected := map[blktrace.Pair]struct{}{
		pair(1, 2): {}, pair(3, 4): {}, pair(5, 6): {}, // 3 hits
		pair(9, 10): {}, // 1 false positive
	}
	prf := DetectionPRF(detected, truth)
	if prf.TruePos != 3 || prf.FalsePos != 1 || prf.FalseNeg != 1 {
		t.Fatalf("counts = %+v", prf)
	}
	if !approx(prf.Precision, 0.75) || !approx(prf.Recall, 0.75) || !approx(prf.F1, 0.75) {
		t.Errorf("prf = %+v", prf)
	}
	empty := DetectionPRF(nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Error("empty PRF should be zeros, not NaN")
	}
}

func TestFrequentSetAndWeightedRecall(t *testing.T) {
	freqs := map[blktrace.Pair]int{
		pair(1, 2): 10, pair(3, 4): 5, pair(5, 6): 2, pair(7, 8): 1,
	}
	fs := FrequentSet(freqs, 5)
	if len(fs) != 2 {
		t.Fatalf("FrequentSet(5) = %d pairs", len(fs))
	}
	detected := map[blktrace.Pair]struct{}{pair(1, 2): {}}
	// At minsup 5: total weight 15, captured 10.
	if got := WeightedRecall(detected, freqs, 5); !approx(got, 10.0/15) {
		t.Errorf("WeightedRecall = %v", got)
	}
	if WeightedRecall(detected, freqs, 100) != 0 {
		t.Error("no frequent pairs -> recall 0")
	}
}

func TestJaccard(t *testing.T) {
	a := map[blktrace.Pair]struct{}{pair(1, 2): {}, pair(3, 4): {}}
	b := map[blktrace.Pair]struct{}{pair(3, 4): {}, pair(5, 6): {}}
	if got := Jaccard(a, b); !approx(got, 1.0/3) {
		t.Errorf("Jaccard = %v", got)
	}
	if Jaccard(nil, nil) != 1 {
		t.Error("two empty sets are identical")
	}
	if Jaccard(a, nil) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if Jaccard(a, a) != 1 {
		t.Error("self Jaccard should be 1")
	}
}
