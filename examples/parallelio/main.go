// Parallelio: correlation-aware placement on an open-channel SSD.
//
// Section V.2 of the paper: "if two or more data chunks were frequently
// read together in the past, there is a high chance that they will be
// read together in the near future" — so place them on *different*
// parallel units and serve the burst in parallel. This example builds
// correlated read bursts, lets the online analyzer learn them, and
// compares burst latency under fresh striping, an aged ill-mapped
// layout, and the learned placement.
//
// Run with: go run ./examples/parallelio
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/ftl"
)

func main() {
	const (
		pus       = 8
		nGroups   = 24
		burstSize = 4
		rounds    = 60
	)
	oc := ftl.OCSSDConfig{PUs: pus, PUReadLatency: 80 * time.Microsecond}
	striped := ftl.Striped{Chunk: 64, PUs: pus}
	// A device whose mapping drifted with age: most data crowded onto
	// two of the eight parallel units.
	aged := ftl.Aged{Striped: striped, Skew: 0.8, HotPUs: 2}

	rng := rand.New(rand.NewSource(21))
	groups := make([][]blktrace.Extent, nGroups)
	for g := range groups {
		groups[g] = make([]blktrace.Extent, burstSize)
		for k := range groups[g] {
			groups[g][k] = blktrace.Extent{
				Block: uint64(rng.Intn(1 << 24)),
				Len:   uint32(8 * (1 + rng.Intn(4))),
			}
		}
	}

	placement, err := ftl.NewCorrelationPlacement(ftl.CorrelationPlacementConfig{
		PUs:  pus,
		Base: aged,
		Analyzer: core.Config{
			ItemCapacity: 2048,
			PairCapacity: 2048,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var agedTotal, stripedTotal, corrTotal time.Duration
	measured := 0
	for r := 0; r < rounds; r++ {
		for _, g := range rng.Perm(nGroups) {
			burst := groups[g]
			placement.Observe(burst)
			if r < rounds/2 {
				continue // let the placement learn first
			}
			ls, err := ftl.BurstLatency(burst, striped, oc)
			if err != nil {
				log.Fatal(err)
			}
			la, err := ftl.BurstLatency(burst, aged, oc)
			if err != nil {
				log.Fatal(err)
			}
			lc, err := ftl.BurstLatency(burst, placement, oc)
			if err != nil {
				log.Fatal(err)
			}
			stripedTotal += ls
			agedTotal += la
			corrTotal += lc
			measured++
		}
	}
	fmt.Printf("correlated read bursts of %d extents on a %d-PU open-channel SSD:\n\n", burstSize, pus)
	fmt.Printf("%-28s %14s\n", "placement", "mean burst lat")
	fmt.Printf("%-28s %14v\n", "fresh striping", stripedTotal/time.Duration(measured))
	fmt.Printf("%-28s %14v\n", "aged / ill-mapped", agedTotal/time.Duration(measured))
	fmt.Printf("%-28s %14v\n", "correlation-aware (learned)", corrTotal/time.Duration(measured))
	fmt.Printf("\nspeedup over the aged layout: %.2f×  (%d extents re-placed online)\n",
		float64(agedTotal)/float64(corrTotal), placement.Placed())
	fmt.Println("a burst served from distinct parallel units costs one PU read;")
	fmt.Println("ill-mapped bursts queue behind each other on the same unit.")
}
