// Quickstart: detect data access correlations in a request stream.
//
// This example builds the smallest end-to-end pipeline: a synthetic
// workload with four planted extent correlations is replayed on a
// simulated NVMe SSD while the monitoring module groups issue events
// into transactions (dynamic 2×-latency window) and the online
// analysis module maintains the bounded-memory synopsis. At the end we
// print the frequent correlations — which should be exactly the
// planted ones, in popularity order.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/pipeline"
	"daccor/internal/replay"
	"daccor/internal/workload"
)

func main() {
	// 1. A workload with known ground truth: four one-to-one block
	// correlations with Zipf popularity 48/24/16/12%, plus noise.
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.OneToOne,
		Occurrences: 1000,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d events, %d planted correlations, %d noise requests\n\n",
		syn.Trace.Len(), len(syn.Correlations), syn.NoiseEvents)

	// 2. A simulated NVMe device to replay against.
	dev, err := device.New(device.NVMeSSD(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The real-time pipeline: monitor + online analyzer, attached
	// to the replay's issue and completion hooks. C = 4096 entries per
	// tier costs 88·C = 360 KB of synopsis memory.
	pipe, res, err := pipeline.AnalyzeReplay(syn.Trace, dev, replay.Options{},
		pipeline.Config{
			Analyzer: core.Config{ItemCapacity: 4096, PairCapacity: 4096},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d requests (mean read latency %v)\n",
		res.Requests, res.MeanReadLatency)
	fmt.Printf("monitor emitted %d transactions; synopsis uses %d bytes\n\n",
		pipe.Monitor().Stats().Transactions, pipe.Analyzer().MemoryBytes())

	// 4. Read out the frequent correlations.
	snap := pipe.Snapshot(5)
	fmt.Println("detected correlations (frequency >= 5):")
	for _, pc := range snap.Pairs {
		fmt.Printf("  %4d×  %s\n", pc.Count, pc.Pair)
	}

	// 5. Check against the ground truth.
	counts := snap.PairCounts()
	hits := 0
	for _, c := range syn.Correlations {
		if _, ok := counts[c.Pairs()[0]]; ok {
			hits++
		}
	}
	fmt.Printf("\nplanted correlations recovered: %d/%d\n", hits, len(syn.Correlations))
}
