// Prefetcher: use live correlations to drive read-ahead.
//
// One of the paper's motivating optimizations is prefetching: when
// extent A is frequently read together with extent B, a read of A is a
// strong hint that B is about to be requested. This example replays an
// MSR-like workload twice on the simulated SSD — once cold, and once
// with a correlation-fed prefetch cache in front of the device — and
// reports the request hit rate the correlations buy.
//
// Run with: go run ./examples/prefetcher
package main

import (
	"fmt"
	"log"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/msr"
)

// prefetchCache is a toy read cache: a bounded set of extents, filled
// only by correlation-driven prefetch, checked on every read.
type prefetchCache struct {
	capacity int
	entries  map[blktrace.Extent]struct{}
	fifo     []blktrace.Extent

	hits, misses, prefetches uint64
}

func newPrefetchCache(capacity int) *prefetchCache {
	return &prefetchCache{
		capacity: capacity,
		entries:  make(map[blktrace.Extent]struct{}, capacity),
	}
}

func (c *prefetchCache) lookup(e blktrace.Extent) bool {
	if _, ok := c.entries[e]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

func (c *prefetchCache) prefetch(e blktrace.Extent) {
	if _, ok := c.entries[e]; ok {
		return
	}
	for len(c.entries) >= c.capacity {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.entries, victim)
	}
	c.entries[e] = struct{}{}
	c.fifo = append(c.fifo, e)
	c.prefetches++
}

func main() {
	profile, err := msr.ProfileByName("wdev")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := profile.Generate(60_000, 3)
	if err != nil {
		log.Fatal(err)
	}

	// The online analyzer learns correlations from the stream itself;
	// no offline pass, no stored trace.
	analyzer, err := core.NewAnalyzer(core.Config{ItemCapacity: 8192, PairCapacity: 8192})
	if err != nil {
		log.Fatal(err)
	}
	cache := newPrefetchCache(1024)

	// Single pass: each read is first checked against the cache, then
	// the analyzer is updated and its current correlations trigger
	// prefetch of partners of the just-read extent.
	const window = 100_000 // 100 µs transaction window, matching the burst gaps
	var tx []blktrace.Extent
	txStart := int64(0)
	flush := func() {
		if len(tx) == 0 {
			return
		}
		analyzer.Process(tx)
		tx = tx[:0]
	}
	// partners indexes the synopsis's frequent correlations for O(1)
	// prefetch decisions; it is refreshed periodically rather than per
	// request.
	const minSupport = 3
	partners := map[blktrace.Extent][]blktrace.Extent{}
	refresh := func() {
		partners = map[blktrace.Extent][]blktrace.Extent{}
		for _, pc := range analyzer.Snapshot(minSupport).Pairs {
			partners[pc.Pair.A] = append(partners[pc.Pair.A], pc.Pair.B)
			partners[pc.Pair.B] = append(partners[pc.Pair.B], pc.Pair.A)
		}
	}
	for i, ev := range gen.Trace.Events {
		if ev.Op == blktrace.OpRead {
			cache.lookup(ev.Extent)
		}
		if len(tx) == 0 {
			txStart = ev.Time
		} else if ev.Time-txStart > window || len(tx) == 8 {
			flush()
			txStart = ev.Time
		}
		tx = append(tx, ev.Extent)
		if i%512 == 0 {
			refresh()
		}
		// Prefetch partners the synopsis currently considers frequent.
		for _, other := range partners[ev.Extent] {
			cache.prefetch(other)
		}
	}
	flush()

	total := cache.hits + cache.misses
	fmt.Printf("reads:          %d\n", total)
	fmt.Printf("prefetches:     %d (cache of %d extents)\n", cache.prefetches, cache.capacity)
	fmt.Printf("hits on prefetched data: %d (%.1f%% of reads)\n",
		cache.hits, 100*float64(cache.hits)/float64(total))
	fmt.Println("\nevery hit is a device read that correlation-driven read-ahead")
	fmt.Println("turned into a memory access — with no recorded trace and a")
	fmt.Printf("synopsis of just %d KB.\n", analyzer.MemoryBytes()/1024)
}
