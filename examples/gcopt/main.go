// GC optimization: correlation-aware write streams on a multi-stream SSD.
//
// Section V.1 of the paper proposes predicting page death times from
// write correlations: "if two or more data chunks were frequently
// written together in the past, there is a high chance that their
// death times will be similar." This example runs the same correlated
// write workload against the simulated multi-stream FTL under three
// policies — a conventional single append point, address hashing, and
// the correlation-learned stream assigner — and compares write
// amplification.
//
// Run with: go run ./examples/gcopt
package main

import (
	"fmt"
	"log"
	"math/rand"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/ftl"
)

const (
	groups     = 24
	groupPages = 32 // each group fills one erase unit
	writers    = 4  // concurrent rewrite operations
	totalOps   = 1200
)

func groupExtents(g int) []blktrace.Extent {
	out := make([]blktrace.Extent, groupPages)
	for k := range out {
		out[k] = blktrace.Extent{
			Block: uint64((g*groupPages + k) * ftl.BlocksPerPage),
			Len:   ftl.BlocksPerPage,
		}
	}
	return out
}

// workload rewrites whole correlated groups from several concurrent
// writers, so their pages interleave at the device — the multi-tenant
// pattern that wrecks a single append point.
func workload(ssd *ftl.SSD, assign ftl.StreamAssigner, seed int64) error {
	write := func(e blktrace.Extent) error {
		return ssd.WriteExtent(e, assign.Assign(e))
	}
	for g := 0; g < groups; g++ {
		assign.Observe(groupExtents(g))
		for _, e := range groupExtents(g) {
			if err := write(e); err != nil {
				return err
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	type op struct{ pending []blktrace.Extent }
	started := 0
	start := func() *op {
		g := rng.Intn(groups)
		assign.Observe(groupExtents(g))
		started++
		return &op{pending: groupExtents(g)}
	}
	var active []*op
	for len(active) < writers {
		active = append(active, start())
	}
	reset := false
	for len(active) > 0 {
		if !reset && started >= totalOps/5 {
			ssd.ResetCounters() // measure steady state
			reset = true
		}
		i := rng.Intn(len(active))
		o := active[i]
		if err := write(o.pending[0]); err != nil {
			return err
		}
		o.pending = o.pending[1:]
		if len(o.pending) == 0 {
			if started < totalOps {
				active[i] = start()
			} else {
				active = append(active[:i], active[i+1:]...)
			}
		}
	}
	return nil
}

func main() {
	cfg := ftl.SSDConfig{EUs: 48, PagesPerEU: 32, Streams: 8}

	corr, err := ftl.NewCorrelationStreams(ftl.CorrelationStreamsConfig{
		Streams:      cfg.Streams,
		Analyzer:     core.Config{ItemCapacity: 16384, PairCapacity: 16384},
		MinSupport:   2,
		RebuildEvery: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Let the characterization framework see the workload's groups a
	// few times first, as a continuously running deployment would have.
	for r := 0; r < 5; r++ {
		for g := 0; g < groups; g++ {
			corr.Observe(groupExtents(g))
		}
	}

	policies := []struct {
		name   string
		assign ftl.StreamAssigner
	}{
		{"single stream (conventional)", ftl.SingleStream{}},
		{"hash by address", ftl.HashStreams{Streams: cfg.Streams}},
		{"correlation streams (learned)", corr},
	}
	fmt.Printf("%-32s %8s %12s %8s\n", "policy", "WAF", "relocated", "erases")
	var rows []ftl.SSDStats
	for _, pol := range policies {
		ssd, err := ftl.NewSSD(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload(ssd, pol.assign, 99); err != nil {
			log.Fatal(err)
		}
		st := ssd.Stats()
		rows = append(rows, st)
		fmt.Printf("%-32s %8.3f %12d %8d\n", pol.name, st.WAF, st.RelocatedPages, st.Erases)
	}
	fmt.Printf("\nGC overhead cut by the learned streams: %.1f× vs single stream\n",
		(rows[0].WAF-1)/(rows[2].WAF-1))
	fmt.Printf("(the assigner learned stream pins for %d extents online)\n", corr.Groups())
}
