// Driftwatch: watch the synopsis adapt to a changing workload.
//
// The paper's concept-drift experiment (Fig. 10) shows the synopsis
// learning a new access pattern and forgetting the old one when the
// correlation table cannot hold both. This example streams two
// alternating workload phases (a "web server" and a "hardware monitor"
// pattern) through one pipeline and prints, at each phase boundary,
// how much of each pattern the synopsis currently remembers.
//
// Run with: go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
)

func main() {
	wdev, err := msr.ProfileByName("wdev")
	if err != nil {
		log.Fatal(err)
	}
	hm, err := msr.ProfileByName("hm")
	if err != nil {
		log.Fatal(err)
	}
	const segment = 15_000
	wdevGen, err := wdev.Generate(3*segment, 1)
	if err != nil {
		log.Fatal(err)
	}
	hmGen, err := hm.Generate(2*segment, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth per concept: the pairs of each phase's 80 most
	// popular correlated groups (groups are Zipf-ranked, so these are
	// the ones that recur enough to be learnable within a phase).
	wdevPairs := truthSet(wdevGen, 80)
	hmPairs := truthSet(hmGen, 80)

	// A deliberately small synopsis: it cannot remember both phases.
	pipe, err := pipeline.New(pipeline.Config{
		Monitor:  monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)},
		Analyzer: core.Config{ItemCapacity: 768, PairCapacity: 768},
	})
	if err != nil {
		log.Fatal(err)
	}

	var clock int64
	feed := func(t *blktrace.Trace, from, to int) {
		seg := t.Slice(from, to)
		if seg.Len() == 0 {
			return
		}
		base := seg.Events[0].Time
		var last int64
		for _, ev := range seg.Events {
			ev.Time = clock + (ev.Time - base)
			last = ev.Time
			if err := pipe.HandleIssue(ev); err != nil {
				log.Fatal(err)
			}
		}
		clock = last + int64(time.Millisecond)
		pipe.Flush()
	}
	report := func(phase string) {
		held := pipe.Snapshot(3).PairSet()
		fmt.Printf("%-28s remembers: %5.1f%% of web-server pattern, %5.1f%% of monitor pattern (%d pairs held)\n",
			phase, 100*recall(held, wdevPairs), 100*recall(held, hmPairs), len(held))
	}

	fmt.Println("streaming alternating workload phases through one synopsis:")
	phases := []struct {
		name     string
		trace    *blktrace.Trace
		from, to int
	}{
		{"phase 1: web server", wdevGen.Trace, 0, segment},
		{"phase 2: hardware monitor", hmGen.Trace, 0, segment},
		{"phase 3: web server again", wdevGen.Trace, segment, 2 * segment},
		{"phase 4: hardware monitor", hmGen.Trace, segment, 2 * segment},
		{"phase 5: web server", wdevGen.Trace, 2 * segment, 3 * segment},
	}
	for _, ph := range phases {
		feed(ph.trace, ph.from, ph.to)
		report("after " + ph.name)
	}
	fmt.Println("\nthe dominant pattern displaces the dormant one and is relearned")
	fmt.Println("when it returns — recency plus frequency, exactly as designed.")
}

// truthSet returns the pairs of the generator's topN most popular
// planted groups (rank order follows the profile's Zipf distribution).
func truthSet(g *msr.GeneratedTrace, topN int) map[blktrace.Pair]struct{} {
	out := map[blktrace.Pair]struct{}{}
	for gi, grp := range g.Groups {
		if gi >= topN {
			break
		}
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				out[blktrace.MakePair(grp[i], grp[j])] = struct{}{}
			}
		}
	}
	return out
}

func recall(held, truth map[blktrace.Pair]struct{}) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for p := range truth {
		if _, ok := held[p]; ok {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}
