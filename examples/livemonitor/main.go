// Livemonitor: query the characterizer while the workloads run.
//
// The paper's framework is meant to run *alongside* the workload,
// answering "what is correlated right now?" at any moment. This
// example starts the multi-device collection engine with two volumes,
// feeds each its own workload from a producer goroutine, and — while
// ingestion is still in flight — periodically asks for the per-device
// and fleet-wide merged top correlations, printing how the picture
// sharpens as evidence accumulates.
//
// Run with: go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
	"daccor/internal/workload"
)

func main() {
	// Two volumes with different access patterns: an inode-style
	// one-to-many workload and a many-to-many one.
	traces := map[string]workload.Kind{
		"vol0": workload.OneToMany,
		"vol1": workload.ManyToMany,
	}

	eng, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 8192, PairCapacity: 8192}),
		engine.WithBackpressure(engine.Block), // replayed stream: lose nothing
		engine.WithDevices("vol0", "vol1"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Producers: stream each volume's trace in concurrently.
	var wg sync.WaitGroup
	seed := int64(11)
	for id, kind := range traces {
		syn, err := workload.Generate(workload.SyntheticConfig{
			Kind:        kind,
			Occurrences: 3000,
			Seed:        seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		seed++
		dev, err := eng.Device(id)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Batched ingest: one queue lock per chunk instead of per
			// event.
			evs := syn.Trace.Events
			for len(evs) > 0 {
				n := min(256, len(evs))
				if err := dev.SubmitBatch(evs[:n]); err != nil {
					log.Printf("submit %s: %v", dev.ID(), err)
					return
				}
				evs = evs[n:]
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Consumer: poll the live state while the producers run.
	fmt.Println("live view of the synopses while the streams are being ingested:")
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	lastSeen := uint64(0)
poll:
	for {
		select {
		case <-done:
			break poll
		case <-ticker.C:
			st, err := eng.Stats()
			if err != nil {
				log.Fatal(err)
			}
			events := st.TotalMonitor().Events
			if events == lastSeen {
				continue
			}
			lastSeen = events
			merged, err := eng.MergedSnapshot(5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  after %6d events: %3d frequent pairs fleet-wide", events, len(merged.Pairs))
			if top := merged.TopPairs(1); len(top) == 1 {
				fmt.Printf(", hottest %s ×%d", top[0].Pair, top[0].Count)
			}
			fmt.Println()
		}
	}

	// Per-device answers: what correlates on each volume.
	for _, id := range eng.Devices() {
		snap, err := eng.Snapshot(id, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d frequent pairs (support ≥ 5)\n", id, len(snap.Pairs))
	}

	// Final fleet-wide answer: directional rules, the prefetcher-ready
	// form, derived from the merged synopsis.
	rules, err := eng.MergedRules(10, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	eng.Stop()
	fmt.Printf("\nfinal fleet-wide rules (support ≥ 10, confidence ≥ 0.6):\n")
	limit := 8
	if len(rules) < limit {
		limit = len(rules)
	}
	for _, r := range rules[:limit] {
		fmt.Printf("  %s → %s   (%.0f%% confidence, %d observations)\n",
			r.From, r.To, 100*r.Confidence, r.Support)
	}
	fmt.Println("\nreading the left side predicts the right side — feed these to a")
	fmt.Println("prefetcher, a data placer, or a multi-stream SSD.")
}
