// Livemonitor: query the characterizer while the workload runs.
//
// The paper's framework is meant to run *alongside* the workload,
// answering "what is correlated right now?" at any moment. This
// example starts the concurrent collector, feeds it a workload from a
// producer goroutine, and — while ingestion is still in flight —
// periodically asks for the current top correlations and directional
// rules, printing how the picture sharpens as evidence accumulates.
//
// Run with: go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"time"

	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
	"daccor/internal/realtime"
	"daccor/internal/workload"
)

func main() {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.OneToMany, // inode-style: one block ↔ a range
		Occurrences: 3000,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}

	c, err := realtime.Start(realtime.Config{
		Pipeline: pipeline.Config{
			Monitor:  monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
			Analyzer: core.Config{ItemCapacity: 8192, PairCapacity: 8192},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Producer: stream the trace in.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, ev := range syn.Trace.Events {
			if err := c.Submit(ev); err != nil {
				log.Printf("submit: %v", err)
				return
			}
		}
	}()

	// Consumer: poll the live state while the producer runs.
	fmt.Println("live view of the synopsis while the stream is being ingested:")
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	lastSeen := uint64(0)
poll:
	for {
		select {
		case <-done:
			break poll
		case <-ticker.C:
			mon, _, err := c.Stats()
			if err != nil {
				log.Fatal(err)
			}
			if mon.Events == lastSeen {
				continue
			}
			lastSeen = mon.Events
			snap, err := c.Snapshot(5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  after %6d events: %3d frequent pairs", mon.Events, len(snap.Pairs))
			if top := snap.TopPairs(1); len(top) == 1 {
				fmt.Printf(", hottest %s ×%d", top[0].Pair, top[0].Count)
			}
			fmt.Println()
		}
	}

	// Final answer: directional rules, the prefetcher-ready form.
	rules, err := c.Rules(10, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	c.Stop()
	fmt.Printf("\nfinal directional rules (support ≥ 10, confidence ≥ 0.6):\n")
	limit := 8
	if len(rules) < limit {
		limit = len(rules)
	}
	for _, r := range rules[:limit] {
		fmt.Printf("  %s → %s   (%.0f%% confidence, %d observations)\n",
			r.From, r.To, 100*r.Confidence, r.Support)
	}
	fmt.Println("\nreading the left side predicts the right side — feed these to a")
	fmt.Println("prefetcher, a data placer, or a multi-stream SSD.")
}
