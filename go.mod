module daccor

go 1.22
