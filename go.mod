module daccor

go 1.24
