# CI / developer targets. `make ci` is the gate: formatting, vet, the
# full test suite under the race detector, the zero-allocation guards
# (which need a non-race run — the race runtime allocates), and the
# fault-injection suite repeated twice.

GO ?= go

.PHONY: ci fmt vet test test-matrix race bench bench-pr bench-diff bench-engine bench-hot alloc-guard alloc-check fault fleet-smoke scenario scenario-check soak soak-smoke soak-smoke-p4

ci: fmt vet race test-matrix alloc-guard alloc-check fault fleet-smoke soak-smoke soak-smoke-p4

# Fail if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Scheduler-width matrix for the partitioned engine: the same engine
# suite under one scheduler thread (every worker interleaves on one
# core — exposes livelocks and missed wakeups) and four (real
# parallelism between producers, the router, and partition workers —
# exposes ordering races). Differential identity P>1 ≡ P=1 must hold
# under both.
test-matrix:
	GOMAXPROCS=1 $(GO) test -count=1 ./internal/engine
	GOMAXPROCS=4 $(GO) test -count=1 ./internal/engine

race:
	$(GO) test -race ./...

# The AllocsPerRun guards must run without -race (the race runtime
# itself allocates, which would mask — or falsely trip — a hot-path
# allocation regression).
alloc-guard:
	$(GO) test -run 'ZeroAllocSteadyState' ./internal/core

# Fault-injection and recovery suite: supervised worker panics,
# checkpoint write failures, restore paths, post-Stop semantics.
# -count=2 catches state leaking across runs (a supervisor that only
# recovers once, a checkpoint store that can't reopen its directory).
fault:
	$(GO) test -race -count=2 -run 'Fault|Supervisor|Checkpoint|Stopped|Health|Readyz' \
		./internal/engine ./internal/checkpoint ./internal/realtime

# Fleet end-to-end smoke: two engine-backed collectors delta-syncing
# into an aggregator over real HTTP, one collector killed (degraded
# serving asserted) and restarted from its checkpoints, with the
# merged view required to reconverge on the single-process merge.
fleet-smoke:
	$(GO) test -race -count=1 -run 'TestFleetSmoke' ./internal/fleet

# Full benchmark harness: the hot-path microbenchmarks (synopsis
# table, analyzer, batched engine ingest) plus one benchmark per
# table/figure of the paper's evaluation. The text output is converted
# by cmd/benchjson and recorded as BENCH_baseline.json — commit the
# refreshed file when a change intentionally moves the numbers.
bench:
	@$(GO) test -bench . -benchmem -run '^$$' . ./internal/core ./internal/engine | tee bench.out
	@$(GO) run ./cmd/benchjson -o BENCH_baseline.json < bench.out
	@rm -f bench.out
	@echo "wrote BENCH_baseline.json"

# Record the current change's full benchmark run alongside the
# committed baseline (BENCH_baseline.json stays untouched — it is the
# comparison anchor). Commit the refreshed BENCH_pr10.json with a
# change that intentionally moves the numbers.
bench-pr:
	@$(GO) test -bench . -benchmem -run '^$$' . ./internal/core ./internal/engine | tee bench.out
	@$(GO) run ./cmd/benchjson -o BENCH_pr10.json < bench.out
	@rm -f bench.out
	@echo "wrote BENCH_pr10.json"

# Human-readable delta table between the two committed runs.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_baseline.json BENCH_pr10.json

# Allocation gate: ns/op is machine- and load-sensitive, but allocs/op
# is deterministic, so CI can hold the committed run to "no benchmark
# allocates more than the baseline" without flaking. The merged fan-in
# read additionally gates on -fail-on-alloc-increase: its allocs/op
# must stay flat (and present) at every fleet size — that flatness is
# the incremental-merge contract, not an incidental number.
alloc-check:
	$(GO) run ./cmd/benchjson -diff -fail-on-alloc-regress \
		-fail-on-alloc-increase 'MergedReadUnderIngest.*incremental' \
		BENCH_baseline.json BENCH_pr10.json

# Hot-path benchmarks only: the numbers the zero-allocation work
# tracks (guarded separately by the AllocsPerRun tests).
bench-hot:
	$(GO) test -bench 'TableTouch|AnalyzerProcess|EngineSubmitBatch' -benchmem -run '^$$' ./internal/core ./internal/engine
	$(GO) test -bench 'EngineIngest|OnlineAnalysisThroughput|MonitorThroughput' -benchmem -run '^$$' .

# Multi-device ingest benchmark only: throughput scaling with worker
# count (compare devices-1 vs devices-4 ns/op on a multi-core host).
bench-engine:
	$(GO) test -bench Engine -benchmem -run '^$$' .

# Closed-loop scenario (replay → HTTP ingest → /v1/watch push → live
# prefetcher + stream assigner). `scenario` refreshes the committed
# quick-run record; `scenario-check` re-runs it and diffs against the
# committed file — the command itself exits non-zero unless the online
# rules strictly beat the no-rules baseline.
scenario:
	$(GO) run ./cmd/scenario -quick -o SCENARIO_quick.json
	@echo "wrote SCENARIO_quick.json"

scenario-check:
	@$(GO) run ./cmd/scenario -quick -o scenario_run.json
	$(GO) run ./cmd/benchjson -diff -fail-on-alloc-regress SCENARIO_quick.json scenario_run.json
	@rm -f scenario_run.json

# Million-event multi-tenant soak (cmd/loadgen): sustained engine +
# HTTP ingest across 256 devices with tenant churn, injected worker
# crashes, checkpoint cycles, and concurrent query/watch traffic,
# under the race detector. The run itself asserts its SLOs (exit 1 on
# any violation) and records its metrics in the benchjson schema.
# `soak` refreshes the committed SOAK_quick.json; `soak-smoke` re-runs
# the same profile and diffs against the committed file, gating on the
# SLO-violation counter so a soak regression fails CI. The run is
# reproducible per (profile, seed); the throughput and latency entries
# are host-sensitive, which is why only SoakSLOViolations is gated and
# the rest are tracked for drift review.
soak:
	$(GO) run -race ./cmd/loadgen -profile quick -o SOAK_quick.json
	@echo "wrote SOAK_quick.json"

soak-smoke:
	$(GO) run -race ./cmd/loadgen -profile quick -o soak_run.json
	$(GO) run ./cmd/benchjson -diff -fail-on-increase 'SoakSLOViolations' SOAK_quick.json soak_run.json
	@rm -f soak_run.json

# P>1 soak smoke: the tiny profile with each device's analyzer split
# across four partition workers — partitioned ingest, merged queries,
# churn, crash recovery, and the reorder-late SLO under the race
# detector. loadgen itself exits non-zero on any SLO violation, so no
# committed baseline is needed.
soak-smoke-p4:
	$(GO) run -race ./cmd/loadgen -profile tiny -partitions 4 -o soak_p4_run.json
	@rm -f soak_p4_run.json
