# CI / developer targets. `make ci` is the gate: formatting, vet, and
# the full test suite under the race detector.

GO ?= go

.PHONY: ci fmt vet test race bench bench-engine

ci: fmt vet race

# Fail if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness (one benchmark per table/figure plus the
# engine and pipeline throughput benchmarks).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Multi-device ingest benchmark only: throughput scaling with worker
# count (compare devices-1 vs devices-4 ns/op on a multi-core host).
bench-engine:
	$(GO) test -bench Engine -benchmem -run '^$$' .
