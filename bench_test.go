// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (plus the Section V extensions and the DESIGN.md
// ablations). Each benchmark regenerates its experiment end to end at
// a reduced scale; run the cmd/experiments binary for full-scale,
// human-readable output.
//
//	go test -bench=. -benchmem
package daccor

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/engine"
	"daccor/internal/experiments"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/replay"
	"daccor/internal/workload"
)

// benchScale keeps per-iteration work around a second.
var benchCfg = experiments.Config{Scale: 0.1, Seed: 1}

func benchExperiment[T interface{ Render(io.Writer) }](b *testing.B, run func(experiments.Config) (T, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

func BenchmarkTable1WorkloadStats(b *testing.B)  { benchExperiment(b, experiments.Table1) }
func BenchmarkTable2ReplaySpeedup(b *testing.B)  { benchExperiment(b, experiments.Table2) }
func BenchmarkFig1HeatMaps(b *testing.B)         { benchExperiment(b, experiments.Fig1) }
func BenchmarkFig5CorrelationCDF(b *testing.B)   { benchExperiment(b, experiments.Fig5) }
func BenchmarkFig6OptimalCurve(b *testing.B)     { benchExperiment(b, experiments.Fig6) }
func BenchmarkFig7Synthetic(b *testing.B)        { benchExperiment(b, experiments.Fig7) }
func BenchmarkFig8RealWorld(b *testing.B)        { benchExperiment(b, experiments.Fig8) }
func BenchmarkFig9Representability(b *testing.B) { benchExperiment(b, experiments.Fig9) }
func BenchmarkFig10ConceptDrift(b *testing.B)    { benchExperiment(b, experiments.Fig10) }
func BenchmarkExtGCOptimization(b *testing.B)    { benchExperiment(b, experiments.GCOpt) }
func BenchmarkExtParallelPlacement(b *testing.B) { benchExperiment(b, experiments.OCSSD) }
func BenchmarkAblationWindow(b *testing.B)       { benchExperiment(b, experiments.AblationWindow) }
func BenchmarkAblationCap(b *testing.B)          { benchExperiment(b, experiments.AblationCap) }
func BenchmarkAblationTiers(b *testing.B)        { benchExperiment(b, experiments.AblationTiers) }
func BenchmarkStreamBaseline(b *testing.B) {
	benchExperiment(b, experiments.AblationStreamBaseline)
}
func BenchmarkCMinerBaseline(b *testing.B) { benchExperiment(b, experiments.CMinerExperiment) }
func BenchmarkAppCaching(b *testing.B)     { benchExperiment(b, experiments.Caching) }
func BenchmarkDriftBaseline(b *testing.B)  { benchExperiment(b, experiments.SpaceSavingExperiment) }

// BenchmarkOnlineAnalysisThroughput measures the hot path in isolation:
// transactions per second through the online analysis module — the
// number that decides whether the framework keeps up with a disk I/O
// stream in real time.
func BenchmarkOnlineAnalysisThroughput(b *testing.B) {
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := p.Generate(30_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	txs, err := monitor.Collect(gen.Trace, monitor.Config{
		Window: monitor.StaticWindow(100 * time.Microsecond),
	})
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.NewAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Process(txs[i%len(txs)].Extents)
	}
}

// BenchmarkMonitorThroughput measures event ingestion: block-layer
// events per second through the monitoring module.
func BenchmarkMonitorThroughput(b *testing.B) {
	p, err := msr.ProfileByName("src2")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := p.Generate(30_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	events := gen.Trace.Events
	m, err := monitor.New(monitor.Config{
		Window: monitor.StaticWindow(100 * time.Microsecond),
	}, func(monitor.Transaction) {})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		ev.Time = int64(i) * 10_000 // keep timestamps monotone across wraps
		if err := m.HandleEvent(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngest measures the multi-device collection engine:
// total events per second across N devices, each fed an MSR-style
// synthetic stream by its own producer goroutine (in SubmitBatch
// chunks, the replayer ingest path) and processed by its own shard
// worker. The total event count is fixed per iteration, so
// ns/op dropping as the device count rises is throughput scaling with
// worker count (visible on multi-core hosts; GOMAXPROCS=1 serializes
// the workers).
//
//	go test -bench Engine -benchmem
func BenchmarkEngineIngest(b *testing.B) {
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := p.Generate(30_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	events := gen.Trace.Events
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("devices-%d", shards), func(b *testing.B) {
			ids := make([]string, shards)
			for i := range ids {
				ids[i] = fmt.Sprintf("dev%d", i)
			}
			eng, err := engine.New(
				engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}),
				engine.WithAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024}),
				engine.WithQueueSize(8192),
				// Block: every submitted event is processed, so the
				// measurement is honest end-to-end work, not drops.
				engine.WithBackpressure(engine.Block),
				engine.WithDevices(ids...),
			)
			if err != nil {
				b.Fatal(err)
			}
			devs := make([]*engine.Device, shards)
			for i, id := range ids {
				if devs[i], err = eng.Device(id); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / shards
			const chunk = 256 // events per SubmitBatch: one queue lock per chunk
			for g := 0; g < shards; g++ {
				wg.Add(1)
				go func(dev *engine.Device, n int) {
					defer wg.Done()
					batch := make([]blktrace.Event, 0, chunk)
					flush := func() bool {
						if len(batch) == 0 {
							return true
						}
						if err := dev.SubmitBatch(batch); err != nil {
							b.Error(err)
							return false
						}
						batch = batch[:0]
						return true
					}
					for i := 0; i < n; i++ {
						ev := events[i%len(events)]
						ev.Time = int64(i) * 10_000 // monotone across trace wraps
						batch = append(batch, ev)
						if len(batch) == chunk && !flush() {
							return
						}
					}
					flush()
				}(devs[g], per)
			}
			wg.Wait()
			eng.Stop() // drain: all queued events processed before the clock stops
			b.StopTimer()
			st, _ := eng.Dropped(ids[0])
			if st != 0 {
				b.Fatalf("dropped %d events under Block policy", st)
			}
		})
	}
}

// BenchmarkEngineIngestParallel measures intra-device scale-up: ONE
// hot device fed by concurrent RunParallel producers, with the
// partitions axis splitting its analyzer across P sub-shard workers.
// The total event count is fixed per iteration, so ns/op dropping as P
// rises is single-device throughput scaling with partition count
// (visible on multi-core hosts; GOMAXPROCS=1 serializes the workers).
// Producers race on the lock-free MPSC ring, so per-producer event
// order interleaves; the engine's reordering stage repairs it before
// analysis.
//
//	go test -bench EngineIngestParallel -benchmem
func BenchmarkEngineIngestParallel(b *testing.B) {
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := p.Generate(30_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	events := gen.Trace.Events
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("partitions-%d", parts), func(b *testing.B) {
			eng, err := engine.New(
				engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}),
				engine.WithAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024}),
				engine.WithQueueSize(8192),
				engine.WithPartitions(parts),
				// Block: every submitted event is processed, so the
				// measurement is honest end-to-end work, not drops.
				engine.WithBackpressure(engine.Block),
				engine.WithDevices("hot"),
			)
			if err != nil {
				b.Fatal(err)
			}
			dev, err := eng.Device("hot")
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				const chunk = 256 // events per SubmitBatch
				batch := make([]blktrace.Event, 0, chunk)
				flush := func() bool {
					if len(batch) == 0 {
						return true
					}
					if err := dev.SubmitBatch(batch); err != nil {
						b.Error(err)
						return false
					}
					batch = batch[:0]
					return true
				}
				for pb.Next() {
					i := seq.Add(1)
					ev := events[int(i)%len(events)]
					ev.Time = i * 10_000 // near-monotone across producers
					batch = append(batch, ev)
					if len(batch) == chunk && !flush() {
						return
					}
				}
				flush()
			})
			eng.Stop() // drain: all queued events processed before the clock stops
			b.StopTimer()
			if n, _ := eng.Dropped("hot"); n != 0 {
				b.Fatalf("dropped %d events under Block policy", n)
			}
		})
	}
}

// BenchmarkEndToEndPipeline measures the full framework — replay,
// monitoring, online analysis — in events per second.
func BenchmarkEndToEndPipeline(b *testing.B) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.ManyToMany,
		Occurrences: 2_000,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := device.New(device.NVMeSSD(), 1)
		if err != nil {
			b.Fatal(err)
		}
		_, _, err = pipeline.AnalyzeReplay(syn.Trace, dev, replay.Options{Speedup: 100},
			pipeline.Config{Analyzer: core.Config{ItemCapacity: 8192, PairCapacity: 8192}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(syn.Trace.Len()) * blktrace.BlockSize)
}
